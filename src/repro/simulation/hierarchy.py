"""Hierarchical secure aggregation: N-level trees of SecAgg rounds.

:class:`HierarchicalSecAggRound` generalises the flat sharded round to
an arbitrary region→…→global aggregation tree described by a
:class:`~repro.secagg.tree.TreeTopology`.  Leaf shards run independent
dropout-tolerant :class:`~repro.simulation.rounds.AsyncSecAggRound`
sub-rounds on an :class:`~repro.simulation.sharding.ExecutionBackend`
exactly as before; every *interior* node then combines its children's
sums with a pluggable :class:`~repro.secagg.compose.Composer`:

* ``"clear"`` — the legacy outer modular addition.  Cheap, but the
  composing node sees each child's intermediate sum in plaintext.
* ``"secagg"`` — an outer Bonawitz round in which each child
  coordinator participates as a
  :class:`~repro.secagg.tree.VirtualClient` whose private input is its
  subtree's sum.  The composing node only ever receives masked frames,
  so no intermediate aggregate is exposed anywhere in the tree — and
  because masks cancel over the complete virtual-client set, the
  result is **bit-identical** to the clear composition.

Cross-shard straggler rebalancing (``rebalance=True``) closes the
remaining availability gap: a leaf shard whose survivor count falls
below its Shamir threshold *before the masking phase commits* no
longer aborts and drops its survivors — they are re-homed round-robin
onto the smallest sibling shards (same parent node, capped at
``max_shard_size``) and those shards re-run as attempt 1 with a
deterministic extended RNG spawn key.  Rebalancing changes which
members contribute, so it is opt-in; the default keeps the legacy
flat and 2-level-clear paths bit-identical to their pinned digests.

Determinism contract (unchanged from the flat round): one 63-bit
entropy draw seeds every leaf's spawn-keyed stream; when the composer
is cryptographic a *second* draw seeds the per-node composition
streams (``spawn_key=(level, *path)``), so the clear path costs the
round RNG exactly as many draws as before.
"""

from __future__ import annotations

import contextlib
import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.bonawitz import ROUND_MASKED_INPUT
from repro.secagg.compose import Composer, get_composer
from repro.secagg.tree import MIN_SHARD_SIZE, TreeNode, TreeTopology
from repro.secagg.wire import WireStats
from repro.simulation.clock import SimulatedClock
from repro.simulation.events import SimulationTrace
from repro.simulation.population import ClientPlan
from repro.simulation.rounds import RoundOutcome
from repro.simulation.sharding import (
    ExecutionBackend,
    ProcessBackend,
    ShardReport,
    ShardTask,
    get_execution_backend,
    shamir_threshold,
    validate_threshold_fraction,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import time_phase

__all__ = [
    "HierarchicalSecAggRound",
    "ShardedSecAggRound",
]


@dataclasses.dataclass
class _NodeResult:
    """One subtree's composition result, bubbling toward the root.

    ``modular_sum is None`` marks an aborted subtree (every leaf under
    it failed); its members count as dropped and the sibling subtrees
    still compose.
    """

    modular_sum: np.ndarray | None
    included: frozenset[int]
    wire: list[WireStats]
    error: str | None = None


class HierarchicalSecAggRound:
    """One cohort round as an N-level tree of SecAgg (sub-)rounds.

    Drop-in sibling of :class:`~repro.simulation.rounds.AsyncSecAggRound`
    producing the same :class:`~repro.simulation.rounds.RoundOutcome`,
    but synchronous from the caller's view: each leaf shard runs to
    completion on its own private clock (possibly in another process),
    the parent clock is advanced by the slowest shard, and interior
    nodes compose their children's sums bottom-up.

    Args:
        vectors: Private input per cohort member (1-based index ->
            length-``d`` integer vector over ``Z_m``).
        modulus: Aggregation modulus ``m``.
        clock: The parent simulated clock; advanced (never run) by
            :meth:`execute`.
        rng: Round-scoped randomness; a single 63-bit entropy draw
            seeds every leaf's spawn-keyed stream (plus one more for
            the composition streams when the composer is
            cryptographic).
        topology: Tree shape (or a parseable string like ``"4x4"``);
            ``TreeTopology((k,))`` is the legacy flat ``k``-shard case.
        threshold_fraction: Per-shard Shamir threshold as a fraction of
            the shard's size (``max(2, ceil(fraction * len(shard)))``).
        composer: How interior nodes combine child sums — ``"clear"``
            (legacy outer modular addition, intermediate sums visible),
            ``"secagg"`` (outer Bonawitz round over virtual clients,
            intermediate sums masked), or a
            :class:`~repro.secagg.compose.Composer` instance.
        plans: Behaviour plan per cohort member.
        phase_timeout: Per-phase server deadline (simulated seconds).
        backend: ``"inline"``, ``"process"``, or an
            :class:`ExecutionBackend` instance.  A *name* builds a
            backend owned (and closed) by this round; an *instance*
            stays caller-owned for reuse across rounds and is never
            closed here.
        trace: Optional parent event log; shard traces are merged into
            it, each event annotated with its shard index.
        mask_prg: Mask PRG backend name shared by every shard (and by
            the composition rounds).
        metrics: Optional :class:`~repro.telemetry.MetricsRegistry`.
            Leaf sub-rounds meter into private registries absorbed
            under a ``shard="<index>"`` label (unchanged from the flat
            round); composition rounds are absorbed under a
            ``level="<depth>"`` label, so the existing phase
            histograms gain per-level series.  The round additionally
            observes ``tree_level_wall_seconds`` per composed level
            and counts ``tree_rebalance_total`` by outcome.
        rebalance: Enable cross-shard straggler rebalancing (see
            module docstring).  Off by default — re-homing survivors
            changes which members contribute, so the legacy digests
            only pin the default.
        max_shard_size: Rebalancing size cap per leaf shard; defaults
            to twice the largest initial shard.
    """

    def __init__(
        self,
        vectors: Mapping[int, np.ndarray],
        modulus: int,
        clock: SimulatedClock,
        rng: np.random.Generator,
        topology: TreeTopology | str,
        threshold_fraction: float = 0.6,
        composer: Composer | str | None = None,
        plans: Mapping[int, ClientPlan] | None = None,
        phase_timeout: float = 60.0,
        backend: ExecutionBackend | str | None = None,
        trace: SimulationTrace | None = None,
        mask_prg: str | None = None,
        metrics: MetricsRegistry | None = None,
        rebalance: bool = False,
        max_shard_size: int | None = None,
    ) -> None:
        if not vectors:
            raise ConfigurationError("cohort must not be empty")
        validate_threshold_fraction(threshold_fraction)
        if len(vectors) < MIN_SHARD_SIZE:
            raise ConfigurationError(
                f"sharded aggregation needs a cohort of >= {MIN_SHARD_SIZE}, "
                f"got {len(vectors)}"
            )
        self._vectors = {
            u: np.asarray(vectors[u], dtype=np.int64) for u in sorted(vectors)
        }
        self._modulus = modulus
        self._clock = clock
        self._threshold_fraction = threshold_fraction
        self._plans = dict(plans or {})
        self._phase_timeout = phase_timeout
        # A backend built here from a name is owned here and closed
        # after each execute(); a passed-in instance stays caller-owned
        # (the engine reuses one pool across every round of a run).
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self._backend = get_execution_backend(backend)
        self._trace = trace
        self._mask_prg = mask_prg
        self._topology = TreeTopology.parse(topology)
        self._composer = get_composer(composer, mask_prg=mask_prg)
        self._root = self._topology.partition(self._vectors)
        self._leaves = self._root.leaves()
        self._rebalance = rebalance
        if max_shard_size is not None and max_shard_size < MIN_SHARD_SIZE:
            raise ConfigurationError(
                f"max_shard_size must be >= {MIN_SHARD_SIZE}, "
                f"got {max_shard_size}"
            )
        self._max_shard_size = (
            max_shard_size
            if max_shard_size is not None
            else 2 * max(len(leaf.members) for leaf in self._leaves)
        )
        # One entropy draw *before* dispatch keeps the per-shard streams
        # identical under every backend (and costs the round RNG exactly
        # one draw regardless of tree shape).  The composition streams
        # draw a second seed only when the composer actually needs
        # randomness, so the clear path's RNG trajectory — and with it
        # every pinned digest — is unchanged.
        self._entropy = int(rng.integers(0, 2**63))
        self._compose_entropy = (
            int(rng.integers(0, 2**63))
            if self._composer.name == "secagg"
            else None
        )
        self.last_reports: tuple[ShardReport, ...] = ()
        self._metrics = metrics
        if metrics is not None:
            self._m_dispatch = metrics.histogram(
                "secagg_shard_dispatch_seconds",
                "Wall seconds the backend spent running a round's "
                "shards, by backend.",
            )
            self._m_merge = metrics.histogram(
                "secagg_shard_merge_seconds",
                "Wall seconds spent absorbing shard reports (metrics "
                "and traces) back into the parent round.",
            )
            self._m_transfer = metrics.counter(
                "secagg_shard_transfer_bytes_total",
                "Vector payload bytes that crossed the worker "
                "boundary, by transport.",
            )
            self._m_level_wall = metrics.histogram(
                "tree_level_wall_seconds",
                "Wall seconds composing each aggregation-tree level, "
                "by level (0 = root).",
            )
            self._m_rebalance = metrics.counter(
                "tree_rebalance_total",
                "Straggler-rebalancing member moves, by outcome "
                "(moved / overflow / stranded).",
            )
        else:
            self._m_dispatch = self._m_merge = self._m_transfer = None
            self._m_level_wall = self._m_rebalance = None

    @property
    def num_shards(self) -> int:
        """Effective leaf-shard count after the partition's size cap."""
        return len(self._leaves)

    @property
    def topology(self) -> TreeTopology:
        """The tree shape this round aggregates over."""
        return self._topology

    @property
    def composer_name(self) -> str:
        """Name of the composer interior nodes run (clear / secagg)."""
        return self._composer.name

    def _shard_threshold(self, members: Sequence[int]) -> int:
        return shamir_threshold(self._threshold_fraction, len(members))

    def _build_task(
        self,
        leaf_index: int,
        members: Sequence[int],
        start_time: float,
        attempt: int = 0,
    ) -> ShardTask:
        return ShardTask(
            shard_index=leaf_index,
            vectors={u: self._vectors[u] for u in members},
            modulus=self._modulus,
            threshold=self._shard_threshold(members),
            start_time=start_time,
            entropy=self._entropy,
            plans={u: self._plans[u] for u in members if u in self._plans},
            phase_timeout=self._phase_timeout,
            mask_prg=self._mask_prg,
            collect_metrics=self._metrics is not None,
            attempt=attempt,
        )

    def _transport_label(self) -> str | None:
        """How shard vectors cross the worker boundary, or ``None``
        when they never leave this process (inline backend)."""
        if isinstance(self._backend, ProcessBackend):
            return self._backend.effective_transport
        return None

    def _wall_span(self, name: str, instrument, **labels):
        """A wall-clock-only span, or a no-op without metrics."""
        if instrument is None:
            return contextlib.nullcontext()
        if labels:
            instrument = instrument.labels(**labels)
        return time_phase(name, wall_histogram=instrument)

    def _record(self, kind: str, **details) -> None:
        if self._trace is not None:
            self._trace.record(kind, **details)

    def _count_rebalance(self, outcome: str, members: int) -> None:
        if self._m_rebalance is not None and members:
            self._m_rebalance.labels(outcome=outcome).inc(members)

    def _merge_traces(self, reports: Sequence[ShardReport]) -> None:
        if self._trace is None:
            return
        annotated = [
            dataclasses.replace(
                event, details={**event.details, "shard": report.shard_index}
            )
            for report in reports
            for event in report.events
        ]
        # Stable sort: global time order, shard order breaking ties —
        # deterministic under both backends.
        annotated.sort(key=lambda event: event.time)
        self._trace.merge(annotated)

    def _dispatch(self, tasks: Sequence[ShardTask]) -> list[ShardReport]:
        with self._wall_span(
            "shard-dispatch", self._m_dispatch, backend=self._backend.name
        ):
            return self._backend.run_shards(tasks)

    # -- straggler rebalancing -------------------------------------------

    def _rebalance_pass(
        self, reports: dict[int, ShardReport]
    ) -> tuple[dict[int, ShardReport], list[ShardTask]]:
        """Re-home pre-masking survivors of below-threshold shards.

        Donors are leaf shards that aborted before the masking phase
        committed (``abort_phase < ROUND_MASKED_INPUT``) with a
        non-empty survivor set; targets are *sibling* leaves (same
        parent node) that completed attempt 0.  Survivors go
        round-robin onto the smallest target under the size cap;
        affected targets re-run as attempt 1.  One pass only — a retry
        that itself aborts drops its members like any aborted shard.
        """
        members_by_leaf = {
            leaf.leaf_index: list(leaf.members) for leaf in self._leaves
        }
        retry_members: dict[int, list[int]] = {}
        groups: dict[tuple[int, ...], list[TreeNode]] = {}
        for leaf in self._leaves:
            groups.setdefault(leaf.path[:-1], []).append(leaf)
        for parent_path in sorted(groups):
            siblings = groups[parent_path]
            donors = [
                reports[leaf.leaf_index]
                for leaf in siblings
                if reports[leaf.leaf_index].outcome is None
                and reports[leaf.leaf_index].abort_phase is not None
                and reports[leaf.leaf_index].abort_phase < ROUND_MASKED_INPUT
                and reports[leaf.leaf_index].survivors
            ]
            if not donors:
                continue
            targets = [
                leaf
                for leaf in siblings
                if reports[leaf.leaf_index].outcome is not None
            ]
            if not targets:
                stranded = sum(len(donor.survivors) for donor in donors)
                self._count_rebalance("stranded", stranded)
                self._record(
                    "rebalance-stranded",
                    parent=list(parent_path),
                    members=stranded,
                )
                continue
            sizes = {
                leaf.leaf_index: len(members_by_leaf[leaf.leaf_index])
                for leaf in targets
            }
            for donor in sorted(donors, key=lambda r: r.shard_index):
                moved: dict[int, list[int]] = {}
                overflow: list[int] = []
                for member in donor.survivors:
                    open_targets = [
                        leaf
                        for leaf in targets
                        if sizes[leaf.leaf_index] < self._max_shard_size
                    ]
                    if not open_targets:
                        overflow.append(member)
                        continue
                    target = min(
                        open_targets,
                        key=lambda leaf: (
                            sizes[leaf.leaf_index],
                            leaf.leaf_index,
                        ),
                    )
                    index = target.leaf_index
                    members_by_leaf[index].append(member)
                    sizes[index] += 1
                    retry_members.setdefault(
                        index, list(reports[index].members)
                    ).append(member)
                    moved.setdefault(index, []).append(member)
                self._count_rebalance(
                    "moved", sum(len(v) for v in moved.values())
                )
                self._count_rebalance("overflow", len(overflow))
                self._record(
                    "shard-rebalanced",
                    shard=donor.shard_index,
                    moved={
                        str(index): members
                        for index, members in sorted(moved.items())
                    },
                    overflow=overflow,
                )
        if not retry_members:
            return reports, []
        retry_start = max(report.ended_at for report in reports.values())
        retry_tasks = [
            self._build_task(
                index, sorted(members), retry_start, attempt=1
            )
            for index, members in sorted(retry_members.items())
        ]
        retried = self._dispatch(retry_tasks)
        final = dict(reports)
        for report in retried:
            final[report.shard_index] = report
        return final, retry_tasks

    # -- bottom-up composition -------------------------------------------

    def _node_rng(self, node: TreeNode) -> np.random.Generator:
        assert self._compose_entropy is not None
        return np.random.default_rng(
            np.random.SeedSequence(
                self._compose_entropy, spawn_key=(node.level, *node.path)
            )
        )

    def _compose_node(
        self, node: TreeNode, reports: dict[int, ShardReport]
    ) -> _NodeResult:
        if node.is_leaf:
            report = reports[node.leaf_index]
            if report.outcome is None:
                return _NodeResult(
                    modular_sum=None,
                    included=frozenset(),
                    wire=[],
                    error=f"shard {node.leaf_index}: {report.error}",
                )
            wire = (
                [report.outcome.wire] if report.outcome.wire is not None else []
            )
            return _NodeResult(
                modular_sum=report.outcome.modular_sum,
                included=report.outcome.included,
                wire=wire,
            )
        children = [
            self._compose_node(child, reports) for child in node.children
        ]
        live = [child for child in children if child.modular_sum is not None]
        included = frozenset().union(*(child.included for child in children))
        wire = [stats for child in children for stats in child.wire]
        if not live:
            reasons = "; ".join(
                child.error or "aborted" for child in children
            )
            return _NodeResult(
                modular_sum=None,
                included=frozenset(),
                wire=[],
                error=f"node {list(node.path)}: all children aborted "
                f"({reasons})",
            )
        compose_metrics = (
            MetricsRegistry() if self._metrics is not None else None
        )
        rng = (
            self._node_rng(node) if self._compose_entropy is not None else None
        )
        with self._wall_span(
            "tree-level", self._m_level_wall, level=str(node.level)
        ):
            result = self._composer.compose(
                [child.modular_sum for child in live],
                self._modulus,
                rng=rng,
                level=node.level,
                metrics=compose_metrics,
            )
        if compose_metrics is not None:
            self._metrics.absorb(
                compose_metrics.snapshot().with_labels(level=str(node.level))
            )
        if result.wire is not None:
            wire.append(result.wire)
        self._record(
            "tree-compose",
            level=node.level,
            node=list(node.path),
            composer=self._composer.name,
            children=len(live),
            aborted_children=len(children) - len(live),
        )
        return _NodeResult(
            modular_sum=result.modular_sum, included=included, wire=wire
        )

    # -- the round ---------------------------------------------------------

    def execute(self) -> RoundOutcome:
        """Run every leaf sub-round and compose the tree bottom-up.

        Returns:
            A :class:`~repro.simulation.rounds.RoundOutcome` whose
            ``modular_sum`` is the tree composition of the surviving
            shards' sums (bit-identical across composers), ``included``
            the union of their survivor sets, ``completed_at`` the
            slowest shard's finish time (to which the parent clock is
            advanced), and ``composer`` the composing strategy's name.

        Raises:
            AggregationError: Only if *every* leaf shard aborted below
                its threshold (after rebalancing, when enabled).
        """
        started_at = self._clock.now
        tasks = [
            self._build_task(leaf.leaf_index, leaf.members, started_at)
            for leaf in self._leaves
        ]
        all_tasks = list(tasks)
        try:
            reports = {
                report.shard_index: report
                for report in self._dispatch(tasks)
            }
            if self._rebalance:
                reports, retry_tasks = self._rebalance_pass(reports)
                all_tasks.extend(retry_tasks)
        finally:
            if self._owns_backend:
                self._backend.close()
        final_reports = [reports[leaf.leaf_index] for leaf in self._leaves]
        self.last_reports = tuple(final_reports)
        if self._metrics is not None:
            transport = self._transport_label()
            if transport is not None:
                moved = sum(
                    vector.nbytes
                    for task in all_tasks
                    for vector in task.vectors.values()
                )
                moved += sum(
                    report.outcome.modular_sum.nbytes
                    for report in final_reports
                    if report.outcome is not None
                )
                self._m_transfer.labels(transport=transport).inc(moved)
        with self._wall_span("shard-merge", self._m_merge):
            if self._metrics is not None:
                for report in final_reports:
                    if report.metrics is not None:
                        self._metrics.absorb(
                            report.metrics.with_labels(
                                shard=str(report.shard_index)
                            )
                        )
            self._merge_traces(final_reports)
        completed_at = max(report.ended_at for report in final_reports)
        self._clock.advance_to(completed_at)
        for report in final_reports:
            if report.outcome is None:
                self._record(
                    "shard-aborted",
                    shard=report.shard_index,
                    members=len(report.members),
                    error=report.error,
                )
        succeeded = [
            report for report in final_reports if report.outcome is not None
        ]
        if not succeeded:
            reasons = "; ".join(
                f"shard {report.shard_index}: {report.error}"
                for report in final_reports
            )
            raise AggregationError(
                f"all {len(final_reports)} shards aborted — {reasons}"
            )
        root = self._compose_node(self._root, reports)
        assert root.modular_sum is not None  # at least one leaf succeeded
        included = root.included
        wire = WireStats().merge(root.wire)
        self._record(
            "sharded-round-complete",
            shards=len(final_reports),
            aborted_shards=len(final_reports) - len(succeeded),
            backend=self._backend.name,
            included=len(included),
            dropped=len(self._vectors) - len(included),
            composer=self._composer.name,
            topology=self._topology.describe(),
        )
        return RoundOutcome(
            modular_sum=root.modular_sum,
            included=included,
            dropped=frozenset(self._vectors) - included,
            started_at=started_at,
            completed_at=completed_at,
            wire=wire,
            composer=self._composer.name,
        )


class ShardedSecAggRound(HierarchicalSecAggRound):
    """The legacy flat ``k``-shard round: a one-level aggregation tree.

    Kept as the stable entry point for 2-level shard→global rounds —
    ``shards=k`` maps to ``TreeTopology((k,))`` and every other knob
    passes through, so existing callers (and their pinned digests) are
    untouched while gaining the ``composer`` and ``rebalance`` options.
    """

    def __init__(
        self,
        vectors: Mapping[int, np.ndarray],
        modulus: int,
        clock: SimulatedClock,
        rng: np.random.Generator,
        shards: int,
        threshold_fraction: float = 0.6,
        plans: Mapping[int, ClientPlan] | None = None,
        phase_timeout: float = 60.0,
        backend: ExecutionBackend | str | None = None,
        trace: SimulationTrace | None = None,
        mask_prg: str | None = None,
        metrics: MetricsRegistry | None = None,
        composer: Composer | str | None = None,
        rebalance: bool = False,
        max_shard_size: int | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        super().__init__(
            vectors=vectors,
            modulus=modulus,
            clock=clock,
            rng=rng,
            topology=TreeTopology((shards,)),
            threshold_fraction=threshold_fraction,
            composer=composer,
            plans=plans,
            phase_timeout=phase_timeout,
            backend=backend,
            trace=trace,
            mask_prg=mask_prg,
            metrics=metrics,
            rebalance=rebalance,
            max_shard_size=max_shard_size,
        )
