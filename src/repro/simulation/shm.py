"""Shared-memory vector transport for the process sharding backend.

The ``"process"`` execution backend ships each
:class:`~repro.simulation.sharding.ShardTask` to a worker over the
:mod:`multiprocessing` pipe, which pickles it — including every client's
input vector, the dominant payload at realistic dimensions.  This
module moves those vectors (and the shard result sums coming back)
through one :class:`multiprocessing.shared_memory.SharedMemory` block
instead: the parent writes all shard inputs into a single ``(rows, d)``
int64 region, the tasks carry only a tiny :class:`ShmVectorBlock`
descriptor (block name + row indices), and each worker attaches the
block, copies its rows out, and writes its composed sum back into its
reserved result row.

The transport is a pure optimisation: the bytes crossing the boundary
are the same int64 values, so shard outcomes are **bit-identical** to
the pickle path (the cross-backend equivalence suite pins this).  On
platforms without POSIX shared memory the backend falls back to pickle
transparently.

Lifecycle: the parent owns the block — create in :meth:`pack`, unlink in
:meth:`close` (``finally``-guarded by the backend).  Workers attach
read-write but never unlink; on Python < 3.13 the attach registers the
segment with the worker's resource tracker, which would warn about a
"leak" at interpreter exit, so :func:`_attach` unregisters it — the
parent remains the sole owner.
"""

from __future__ import annotations

import dataclasses
import weakref

import numpy as np

from repro.errors import ConfigurationError

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def shared_memory_available() -> bool:
    """Whether this platform supports the shared-memory transport."""
    return _shared_memory is not None


@dataclasses.dataclass(frozen=True)
class ShmVectorBlock:
    """Descriptor of one shard's slice of the shared vector block.

    Attributes:
        name: OS name of the shared-memory segment.
        total_rows: Row count of the whole ``(total_rows, dimension)``
            int64 block (needed to re-map it in the worker).
        dimension: Vector length ``d``.
        rows: ``(client, row)`` pairs locating this shard's input
            vectors inside the block.
        result_row: Row reserved for this shard's composed modular sum.
    """

    name: str
    total_rows: int
    dimension: int
    rows: tuple[tuple[int, int], ...]
    result_row: int


#: Worker-side attachment cache: the parent reuses one block (name)
#: across rounds, so each worker process maps it once and keeps the
#: mapping for the pool's lifetime instead of re-opening per shard.
_attach_cache: dict[str, object] = {}


def _attach_cached(name: str):
    segment = _attach_cache.get(name)
    if segment is None:
        if len(_attach_cache) > 8:  # Stale names from resized blocks.
            for stale in _attach_cache.values():
                stale.close()
            _attach_cache.clear()
        segment = _attach(name)
        _attach_cache[name] = segment
    return segment


def _attach(name: str):
    """Attach an existing segment without adopting ownership.

    The parent owns (and unlinks) the block; a worker that let the
    attach register with the resource tracker would race other workers'
    unregisters on the tracker's shared name set and spray ``KeyError``
    noise at exit.  Python 3.13 exposes ``track=False`` for exactly
    this; on older interpreters the registration is suppressed for the
    duration of the attach (workers run one task at a time, so the
    swap is not racy within the process).
    """
    assert _shared_memory is not None
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(res_name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(res_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class WorkerBlock:
    """Worker-side view of one shard's slice of the shared block.

    The underlying mapping is cached per block name for the worker's
    lifetime (the parent reuses one block across rounds), so opening a
    :class:`WorkerBlock` per shard task costs a dict hit, not a
    ``shm_open``.  :meth:`close` releases only this task's array view.
    """

    def __init__(self, block: ShmVectorBlock) -> None:
        self._block = block
        self._table = np.ndarray(
            (block.total_rows, block.dimension),
            dtype=np.int64,
            buffer=_attach_cached(block.name).buf,
        )

    def read_vectors(self) -> dict[int, np.ndarray]:
        """Copy this shard's input vectors out of the block."""
        return {
            client: np.array(self._table[row], dtype=np.int64)
            for client, row in self._block.rows
        }

    def write_result(self, modular_sum: np.ndarray) -> None:
        """Park the shard's composed sum in its reserved result row."""
        self._table[self._block.result_row] = modular_sum

    def close(self) -> None:
        self._table = None  # Drop the view; the cached mapping stays.

    def __enter__(self) -> "WorkerBlock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SharedMemoryTransport:
    """Parent-side manager of a reusable shared vector block.

    One transport serves many rounds: :meth:`pack` reuses the existing
    block whenever it is large enough (workers then reuse their cached
    mapping — no per-round ``shm_open``), growing it — with a fresh OS
    name — only when a round needs more rows.  Usage (what
    :class:`~repro.simulation.sharding.ProcessBackend` does)::

        packed = transport.pack(tasks)       # vectors -> block
        reports = pool.map(run_shard, packed)
        reports = transport.unpack(reports)  # sums <- block
        ...                                  # further rounds reuse it
        transport.close()                    # with the backend
    """

    def __init__(self) -> None:
        if _shared_memory is None:  # pragma: no cover
            raise ConfigurationError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; use the pickle vector transport"
            )
        self._segment = None
        self._capacity = 0  # bytes
        self._result_rows: dict[int, int] = {}
        self._dimension = 0
        self._total_rows = 0
        self._finalizer: weakref.finalize | None = None

    @staticmethod
    def _release_segment(segment) -> None:
        """Close and unlink one segment; tolerant of racing releases."""
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def _ensure_capacity(self, total_rows: int, dimension: int) -> None:
        needed = max(1, total_rows * dimension * 8)
        if self._segment is None or needed > self._capacity:
            self.close()
            self._segment = _shared_memory.SharedMemory(
                create=True, size=needed
            )
            self._capacity = self._segment.size
            # Abnormal-teardown guard: if the transport is dropped
            # without close() — a worker crash unwinding the backend, a
            # mid-round cancellation, plain caller error — the named
            # segment must not outlive the process.  The finalizer
            # captures only the segment (never self), so it fires on
            # garbage collection and at interpreter exit.
            self._finalizer = weakref.finalize(
                self, self._release_segment, self._segment
            )

    def _table(self) -> np.ndarray:
        return np.ndarray(
            (self._total_rows, self._dimension),
            dtype=np.int64,
            buffer=self._segment.buf,
        )

    def pack(self, tasks):
        """Write every task's vectors into the (reused) block.

        Returns:
            The tasks with ``vectors`` emptied and ``shm`` descriptors
            attached, in input order.
        """
        from repro.simulation.sharding import ShardTask  # cycle guard

        dimensions = {
            vector.shape[0]
            for task in tasks
            for vector in task.vectors.values()
        }
        if len(dimensions) != 1:
            raise ConfigurationError(
                f"shard vectors must share one dimension, got {dimensions}"
            )
        self._dimension = dimensions.pop()
        self._total_rows = sum(len(task.vectors) for task in tasks) + len(
            tasks
        )
        self._result_rows = {}
        self._ensure_capacity(self._total_rows, self._dimension)
        table = self._table()
        packed: list[ShardTask] = []
        row = 0
        for task in tasks:
            rows = []
            for client in sorted(task.vectors):
                table[row] = task.vectors[client]
                rows.append((client, row))
                row += 1
            self._result_rows[task.shard_index] = row
            packed.append(
                dataclasses.replace(
                    task,
                    vectors={},
                    shm=ShmVectorBlock(
                        name=self._segment.name,
                        total_rows=self._total_rows,
                        dimension=self._dimension,
                        rows=tuple(rows),
                        result_row=row,
                    ),
                )
            )
            row += 1
        return packed

    def unpack(self, reports):
        """Restore each successful report's modular sum from the block."""
        if self._segment is None:
            raise ConfigurationError("unpack called before pack")
        table = self._table()
        restored = []
        for report in reports:
            if report.outcome is not None and report.shard_index in (
                self._result_rows
            ):
                row = self._result_rows[report.shard_index]
                report = dataclasses.replace(
                    report,
                    outcome=dataclasses.replace(
                        report.outcome,
                        modular_sum=np.array(table[row], dtype=np.int64),
                    ),
                )
            restored.append(report)
        return restored

    def close(self) -> None:
        """Release and unlink the block; idempotent.

        Runs the registered finalizer (a ``weakref.finalize`` callback
        is once-only, so an explicit close and a later gc never race to
        unlink the same name twice).
        """
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._segment = None
        self._capacity = 0
