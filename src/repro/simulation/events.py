"""Clock-aware event primitives and the simulation trace.

Tasks in the simulation communicate exclusively through these
primitives, which suspend on :class:`~repro.simulation.clock.SimulatedClock`
timers and futures — never on wall time.  That discipline is what makes
a whole run replayable bit-for-bit from a seed.

* :class:`Mailbox` — a deterministic FIFO channel.  ``put`` is
  synchronous (messages are "on the wire" instantly; transmission delay
  is modelled by the *sender* sleeping first), ``get`` suspends until a
  message arrives, and ``get_before`` additionally gives up at a
  simulated-time deadline — the primitive from which phase timeouts and
  straggler cutoffs are built.
* :class:`SimulationTrace` — an append-only log of timestamped events
  (arrivals, dropouts, ignored stragglers), the observability surface
  tests and the CLI report against.

Clock-timer cancellation contract
---------------------------------

:meth:`SimulatedClock.call_at <repro.simulation.clock.SimulatedClock.call_at>`
returns a :class:`~repro.simulation.clock.TimerHandle`.  Any primitive
that races a deadline against another wake-up source (here:
``get_before`` racing the deadline against message arrival) **must**
call ``handle.cancel()`` the moment the other source wins.  The clock
guarantees the other half of the contract: a cancelled timer never
fires, never advances simulated time, is excluded from
``pending_timers``, and is reaped from the heap lazily — so after a
round whose phases all completed early, ``clock.pending_timers == 0``
and no stale deadline distorts round durations or accumulates across
rounds.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from collections.abc import Mapping
from typing import Any

import asyncio

from repro.simulation.clock import SimulatedClock

#: Sentinel returned by :meth:`Mailbox.get_before` on deadline expiry.
_DEADLINE = object()


class Mailbox:
    """A deterministic FIFO message channel on the simulated clock.

    Args:
        clock: The clock deadlines are measured against.
    """

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._items: deque[Any] = deque()
        self._getters: deque[asyncio.Future] = deque()

    def put(self, item: Any) -> None:
        """Deliver ``item``; wakes the oldest pending getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_result(item)
                return
        self._items.append(item)

    async def get(self) -> Any:
        """Receive the next message, waiting as long as it takes."""
        if self._items:
            return self._items.popleft()
        getter = asyncio.get_running_loop().create_future()
        self._getters.append(getter)
        return await getter

    async def get_before(self, deadline: float) -> Any | None:
        """Receive the next message, or ``None`` at ``deadline``.

        A message arriving at exactly the deadline wins or loses by
        timer registration order — deterministic either way.  Whichever
        side loses the race is withdrawn: a real arrival cancels the
        deadline timer (see the module docstring's cancellation
        contract), so repeated ``get_before`` calls against one deadline
        leave no stale timers behind.
        """
        if self._items:
            return self._items.popleft()
        getter = asyncio.get_running_loop().create_future()
        self._getters.append(getter)

        def expire() -> None:
            if not getter.done():
                getter.set_result(_DEADLINE)

        handle = self._clock.call_at(deadline, expire)
        try:
            item = await getter
        finally:
            # No-op if the deadline itself fired; withdraws the timer
            # when a message won the race or the waiter was cancelled.
            handle.cancel()
        return None if item is _DEADLINE else item

    def __len__(self) -> int:
        return len(self._items)


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One timestamped simulation event.

    Attributes:
        time: Simulated time of the event.
        kind: Short machine-readable label (e.g. ``"client-dropped"``).
        details: Free-form fields (client index, phase, ...).
    """

    time: float
    kind: str
    details: Mapping[str, Any]


class SimulationTrace:
    """Append-only event log shared by the round driver and the engine.

    Args:
        clock: The clock events are timestamped against.
        max_events: Optional ring-buffer cap.  When set, appending past
            the cap drops the *oldest* events (counted in
            :attr:`dropped_events`), so million-round runs keep a
            bounded recent window instead of exhausting memory.  The
            default keeps every event — the behaviour tests and the
            exact-replay tooling rely on.
    """

    def __init__(
        self, clock: SimulatedClock, max_events: int | None = None
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._clock = clock
        self.max_events = max_events
        self._events: deque[TraceEvent] = deque(maxlen=max_events)
        #: Events evicted by the ring buffer since construction.
        self.dropped_events = 0

    @property
    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first (a fresh list)."""
        return list(self._events)

    def _append(self, event: TraceEvent) -> None:
        if (
            self.max_events is not None
            and len(self._events) == self.max_events
        ):
            self.dropped_events += 1  # deque evicts the oldest itself.
        self._events.append(event)

    def record(self, kind: str, **details: Any) -> None:
        """Append one event stamped with the current simulated time."""
        self._append(
            TraceEvent(time=self._clock.now, kind=kind, details=details)
        )

    def merge(self, events: "list[TraceEvent]") -> None:
        """Absorb events recorded on another clock (e.g. a shard
        sub-round's private clock, possibly in another process).

        Events keep their own timestamps — they describe when things
        happened on the sub-round's timeline, which shares the parent's
        epoch — and are appended as given; callers wanting global time
        order should pre-sort deterministically.  The ring-buffer cap
        (if any) applies here too.
        """
        for event in events:
            self._append(event)

    def __len__(self) -> int:
        return len(self._events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All retained events with the given label, in order."""
        return [event for event in self._events if event.kind == kind]

    def count(self, kind: str) -> int:
        """Number of retained events with the given label."""
        return len(self.of_kind(kind))
