"""Client population: registry, availability models, cohort sampling.

Production federated learning runs over an *unreliable* population:
devices go offline between rounds (churn), drop mid-protocol (crashes,
network loss), or respond so slowly that the server's phase deadline
passes without them (stragglers).  This module models that population
as data the round driver consumes:

* :class:`ClientPlan` — one client's behaviour for one round: the first
  protocol phase at which it stops responding (if any) and its per-phase
  upload latencies.
* :class:`AvailabilityModel` — pluggable generators of plans.  Models
  decorate each other through their ``base`` argument, so scenarios
  compose: ``BernoulliDropout(0.1, base=StragglerLatency(0.2, 1.0))``
  gives a population that is both flaky and slow.
* :class:`Population` — the registry.  All randomness is derived from a
  single root seed through ``numpy`` ``SeedSequence`` spawn keys of the
  form ``(round, client, purpose)``, so every client's every decision is
  reproducible *and* independent of cohort composition — adding a client
  to a round never perturbs another client's stream.
"""

from __future__ import annotations

import abc
import dataclasses
import math

import numpy as np

from repro.errors import ConfigurationError
from repro.secagg.bonawitz import ROUND_ADVERTISE, ROUND_UNMASK

#: Spawn-key purpose codes (third component of the spawn key).
PURPOSE_AVAILABILITY = 0
PURPOSE_ENCODING = 1
PURPOSE_PROTOCOL = 2
PURPOSE_SAMPLING = 3

#: Number of protocol phases a plan covers (Bonawitz rounds 0-3).
NUM_PHASES = ROUND_UNMASK - ROUND_ADVERTISE + 1


@dataclasses.dataclass(frozen=True)
class ClientPlan:
    """One client's scripted behaviour for one protocol round.

    Attributes:
        drop_phase: First protocol phase (0-3) at which the client stops
            responding, or ``None`` if it stays online all round.
        latencies: Per-phase delay between receiving a phase's input and
            uploading its response (simulated seconds).
    """

    drop_phase: int | None = None
    latencies: tuple[float, ...] = (0.0,) * NUM_PHASES

    def __post_init__(self) -> None:
        if self.drop_phase is not None and not (
            ROUND_ADVERTISE <= self.drop_phase <= ROUND_UNMASK
        ):
            raise ConfigurationError(
                f"drop_phase must lie in [{ROUND_ADVERTISE}, "
                f"{ROUND_UNMASK}] or be None, got {self.drop_phase}"
            )
        if len(self.latencies) != NUM_PHASES:
            raise ConfigurationError(
                f"need {NUM_PHASES} per-phase latencies, got "
                f"{len(self.latencies)}"
            )
        if any(latency < 0 for latency in self.latencies):
            raise ConfigurationError(
                f"latencies must be >= 0, got {self.latencies}"
            )

    def responds_at(self, phase: int) -> bool:
        """Whether the client is still responding at ``phase``."""
        return self.drop_phase is None or phase < self.drop_phase


class AvailabilityModel(abc.ABC):
    """Generator of per-(client, round) behaviour plans."""

    @abc.abstractmethod
    def plan(
        self, client_index: int, round_index: int, rng: np.random.Generator
    ) -> ClientPlan:
        """The plan for one client in one round.

        Args:
            client_index: 1-based client identifier.
            round_index: 0-based training round.
            rng: Stream dedicated to this (client, round) pair; models
                must draw from it in a fixed order for reproducibility.
        """


class AlwaysAvailable(AvailabilityModel):
    """Every client online every round with a fixed upload latency.

    Args:
        latency: Constant per-phase latency (simulated seconds).
    """

    def __init__(self, latency: float = 0.05) -> None:
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency}")
        self._plan = ClientPlan(latencies=(latency,) * NUM_PHASES)

    def plan(
        self, client_index: int, round_index: int, rng: np.random.Generator
    ) -> ClientPlan:
        return self._plan


class BernoulliDropout(AvailabilityModel):
    """Independent per-round dropout at a uniformly random phase.

    Each round, each client crashes with probability ``rate``; the phase
    at which it goes silent is uniform over the protocol's four phases,
    exercising every recovery path of the Bonawitz state machine.

    Args:
        rate: Dropout probability per client per round, in ``[0, 1)``.
        base: Model supplying the latencies (and any prior drop
            decision); defaults to :class:`AlwaysAvailable`.
    """

    def __init__(
        self, rate: float, base: AvailabilityModel | None = None
    ) -> None:
        if not 0 <= rate < 1:
            raise ConfigurationError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._base = base if base is not None else AlwaysAvailable()

    def plan(
        self, client_index: int, round_index: int, rng: np.random.Generator
    ) -> ClientPlan:
        plan = self._base.plan(client_index, round_index, rng)
        # Fixed draw order: decide-then-phase, so streams stay aligned.
        drops = rng.random() < self.rate
        phase = int(rng.integers(ROUND_ADVERTISE, ROUND_UNMASK + 1))
        if drops and plan.responds_at(phase):
            plan = dataclasses.replace(plan, drop_phase=phase)
        return plan


class StragglerLatency(AvailabilityModel):
    """Log-normal per-phase latencies with a heavy tail.

    Clients whose latency exceeds the server's phase deadline are
    *effective* dropouts for that round even though they never crash —
    the regime that distinguishes an asynchronous orchestrator from a
    synchronous one.

    Args:
        median: Median per-phase latency (simulated seconds).
        sigma: Log-space standard deviation; ``sigma = 0`` degenerates
            to a constant latency, larger values fatten the tail.
        base: Model supplying any drop decision; defaults to
            :class:`AlwaysAvailable` (whose constant latency is
            replaced by the sampled one).
    """

    def __init__(
        self,
        median: float,
        sigma: float = 1.0,
        base: AvailabilityModel | None = None,
    ) -> None:
        if median <= 0:
            raise ConfigurationError(f"median must be > 0, got {median}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self.median = median
        self.sigma = sigma
        self._base = base if base is not None else AlwaysAvailable()

    def plan(
        self, client_index: int, round_index: int, rng: np.random.Generator
    ) -> ClientPlan:
        plan = self._base.plan(client_index, round_index, rng)
        latencies = tuple(
            self.median * math.exp(self.sigma * rng.standard_normal())
            for _ in range(NUM_PHASES)
        )
        return dataclasses.replace(plan, latencies=latencies)


class RoundChurn(AvailabilityModel):
    """Whole-round outages: a churned client never even advertises keys.

    Models device churn (phone left the charger, network switched) as a
    per-round Bernoulli event that takes the client offline for the
    entire round — distinct from mid-protocol dropout, which leaves
    state behind that the protocol must recover.

    Args:
        churn_rate: Probability a client is offline for a given round.
        base: Model supplying latencies / mid-round dropout.
    """

    def __init__(
        self, churn_rate: float, base: AvailabilityModel | None = None
    ) -> None:
        if not 0 <= churn_rate < 1:
            raise ConfigurationError(
                f"churn_rate must be in [0, 1), got {churn_rate}"
            )
        self.churn_rate = churn_rate
        self._base = base if base is not None else AlwaysAvailable()

    def plan(
        self, client_index: int, round_index: int, rng: np.random.Generator
    ) -> ClientPlan:
        plan = self._base.plan(client_index, round_index, rng)
        if rng.random() < self.churn_rate:
            plan = dataclasses.replace(plan, drop_phase=ROUND_ADVERTISE)
        return plan


class Population:
    """The client registry: identities, randomness, cohort sampling.

    Args:
        size: Number of registered clients; indices are ``1..size`` (the
            Bonawitz protocol reserves 0).
        availability: Behaviour model; defaults to
            :class:`AlwaysAvailable`.
        seed: Root seed from which every client/round stream derives.
    """

    def __init__(
        self,
        size: int,
        availability: AvailabilityModel | None = None,
        seed: int = 0,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"population must be >= 1, got {size}")
        self.size = size
        self.availability = (
            availability if availability is not None else AlwaysAvailable()
        )
        self.seed = seed

    @property
    def client_indices(self) -> tuple[int, ...]:
        """All registered client indices (1-based)."""
        return tuple(range(1, self.size + 1))

    def client_rng(
        self, round_index: int, client_index: int, purpose: int
    ) -> np.random.Generator:
        """The dedicated stream for one (round, client, purpose) triple."""
        return np.random.default_rng(
            np.random.SeedSequence(
                self.seed, spawn_key=(round_index, client_index, purpose)
            )
        )

    def round_rng(self, round_index: int, purpose: int) -> np.random.Generator:
        """A round-scoped stream (client slot 0 is reserved for these)."""
        return self.client_rng(round_index, 0, purpose)

    def setup_rng(self, purpose: int) -> np.random.Generator:
        """A run-scoped stream (rotation, model init, ...)."""
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(purpose,))
        )

    def sample_cohort(
        self, round_index: int, expected_size: int
    ) -> tuple[int, ...]:
        """Poisson-sample a round's cohort at rate ``expected_size / size``.

        Poisson sampling (each client tossed independently) is what the
        privacy accountant's amplification lemma assumes, so the engine
        samples the same way.  The cohort may be empty.

        Args:
            round_index: 0-based round (selects the sampling stream).
            expected_size: Expected cohort size; capped at ``size``.

        Returns:
            Sorted 1-based client indices.
        """
        if expected_size < 1:
            raise ConfigurationError(
                f"expected_size must be >= 1, got {expected_size}"
            )
        rate = min(1.0, expected_size / self.size)
        rng = self.round_rng(round_index, PURPOSE_SAMPLING)
        mask = rng.random(self.size) < rate
        return tuple(int(i) + 1 for i in np.flatnonzero(mask))

    def plans(
        self, round_index: int, cohort: tuple[int, ...]
    ) -> dict[int, ClientPlan]:
        """Behaviour plans for each cohort member this round."""
        return {
            client: self.availability.plan(
                client,
                round_index,
                self.client_rng(round_index, client, PURPOSE_AVAILABILITY),
            )
            for client in cohort
        }
