"""Async dropout-tolerant SecAgg rounds: the mailbox transport.

:func:`repro.secagg.bonawitz.run_bonawitz` drives the sans-I/O protocol
sessions (:mod:`repro.secagg.statemachine`) synchronously: every phase
is a barrier, dropouts are a static schedule, and time does not exist.
This module is the *other* transport over the very same sessions: every
client is an asyncio task that sleeps its upload latency on the
simulated clock before posting its wire frames into the server's
mailbox, and the server collects each phase's datagrams until either
everyone expected has responded or the phase deadline passes —
whichever comes first.

The protocol logic itself — message encoding, negotiation, phase
bookkeeping, thresholds, crypto — lives entirely in the shared core;
this file only moves bytes and decides when phases close.  The
consequences are exactly the ones the protocol was designed for:

* a client that crashes (plan says stop) or straggles past the deadline
  simply misses the phase; the surviving set shrinks monotonically
  ``U0 ⊇ U1 ⊇ U2 ⊇ U3`` and Shamir reconstruction removes whatever
  masks the dropouts left behind;
* if any phase's survivor count falls below the Shamir threshold the
  server raises :class:`~repro.errors.AggregationError` — the round
  aborts rather than mis-aggregating;
* a message arriving after its phase closed is logged and ignored
  (the straggler is treated as a dropout for the round);
* a client proposing an unknown protocol version or mask-PRG backend is
  refused at Hello with a typed :class:`~repro.secagg.wire.Reject` — its
  task parks a :class:`~repro.errors.NegotiationError` and exits cleanly
  while the rest of the round proceeds.

Late in the round the server broadcasts an
:class:`~repro.secagg.wire.UnmaskRequest`; the ``tamper_unmask_request``
seam lets tests inject the malicious overlap request that clients must
refuse (the protocol's core security rule).  Every datagram is tallied
in the round's :class:`~repro.secagg.wire.WireStats`, surfaced on the
:class:`RoundOutcome` and as per-phase ``wire-phase`` trace events.

With a :class:`~repro.telemetry.MetricsRegistry` attached, the round
additionally reports per-phase latency histograms on both clocks
(via :func:`~repro.telemetry.time_phase` spans), outcome / dropout /
timeout / straggler counters, and wire byte+message counters derived
from per-phase :meth:`WireStats.phase_summary
<repro.secagg.wire.WireStats.phase_summary>` totals (each phase's wire
cells are written exactly once, so the per-tag totals *are* the phase
delta — no ledger snapshot/diff on the hot path).
Instrumentation only ever *reads* the simulated clock — never
the RNG — so metered and unmetered runs stay bit-identical.
"""

from __future__ import annotations

import contextlib
import dataclasses
from collections.abc import Callable, Mapping

import asyncio

import numpy as np

from repro.errors import AggregationError, ChaosKillError, ConfigurationError
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
    UnmaskRequest,
    warm_pairwise_agreements,
)
from repro.secagg.field import DEFAULT_FIELD, PrimeField
from repro.secagg.kernels import MaskPrg, get_mask_prg
from repro.secagg.keys import TOY_GROUP, KeyAgreementGroup
from repro.secagg.statemachine import (
    PHASE_TAGS,
    ClientSession,
    ServerSession,
)
from repro.secagg.wire import PROTOCOL_V1, WireStats
from repro.simulation.clock import SimulatedClock
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import time_phase
from repro.simulation.events import Mailbox, SimulationTrace
from repro.simulation.population import ClientPlan

#: Wire tags, one per protocol phase (shared with the sans-I/O core).
_TAGS = PHASE_TAGS

#: Server -> client sentinel: "you are no longer part of this round".
_EXCLUDED = object()


@dataclasses.dataclass(frozen=True)
class RoundOutcome:
    """Result of one asynchronous secure-aggregation round.

    Attributes:
        modular_sum: ``Σ_{u ∈ included} x_u mod m``.
        included: ``U2`` — clients whose input made the aggregate.
        dropped: Cohort members that dropped or straggled out.
        started_at: Simulated time the round began.
        completed_at: Simulated time the sum was recovered.
        wire: Per-phase, per-client message/byte accounting for the
            round (``None`` for outcomes built before any traffic).
        composer: How intermediate sums were combined for hierarchical
            rounds (``"clear"`` exposes shard sums to the composing
            node, ``"secagg"`` keeps them masked); ``None`` for flat
            rounds, which have no intermediate sums.
    """

    modular_sum: np.ndarray
    included: frozenset[int]
    dropped: frozenset[int]
    started_at: float
    completed_at: float
    wire: WireStats | None = None
    composer: str | None = None

    @property
    def duration(self) -> float:
        """Simulated wall time of the round."""
        return self.completed_at - self.started_at


class AsyncSecAggRound:
    """One event-driven Bonawitz round over a cohort with behaviour plans.

    Args:
        vectors: Private input per cohort member (1-based index ->
            length-``d`` integer vector over ``Z_m``).
        modulus: Aggregation modulus ``m``.
        threshold: Shamir reconstruction threshold ``t``.
        clock: The simulated clock all waiting happens on.
        rng: Round-scoped randomness; per-client protocol generators are
            spawned from it in sorted index order (mirroring
            ``run_bonawitz``).
        plans: Behaviour plan per cohort member; omitted members stay
            online with zero latency.
        phase_timeout: Simulated seconds the server waits per phase
            before moving on without the missing clients.
        group: DH group (defaults to the fast 61-bit toy group).
        field: Shamir sharing field.
        trace: Optional event log for observability.
        tamper_unmask_request: Test/adversary seam applied to the
            server's round-3 announcement before broadcast.
        mask_prg: Mask PRG backend (protocol version) shared by the
            server and every cohort member — ``"sha256-ctr"`` (default,
            bit-compatible) or ``"philox"`` (fast), or a
            :class:`~repro.secagg.kernels.MaskPrg` instance.
        client_versions: Protocol version each client proposes at Hello
            (defaults to :data:`~repro.secagg.wire.PROTOCOL_V1`); the
            seam for exercising version-negotiation rejections.
        metrics: Optional :class:`~repro.telemetry.MetricsRegistry` the
            round reports into — per-phase latency histograms (on both
            clocks), round outcome / dropout / timeout counters, and
            wire byte+message counters fed from the session's
            :class:`~repro.secagg.wire.WireStats`.  ``None`` (default)
            keeps the round entirely instrumentation-free.
        fail_at_phase: Chaos seam — the server "crashes" (raises
            :class:`~repro.errors.ChaosKillError`) when it reaches this
            phase, before collecting or committing anything for it.
            ``None`` (default) never fails.
        wire_codec: Wire codec backend name for every session in the
            round (``None`` = process default, normally ``"batched"``).
            Bytes are identical across codecs; the knob exists for
            equivalence assertions and bisection.
    """

    def __init__(
        self,
        vectors: Mapping[int, np.ndarray],
        modulus: int,
        threshold: int,
        clock: SimulatedClock,
        rng: np.random.Generator,
        plans: Mapping[int, ClientPlan] | None = None,
        phase_timeout: float = 60.0,
        group: KeyAgreementGroup | None = None,
        field: PrimeField = DEFAULT_FIELD,
        trace: SimulationTrace | None = None,
        tamper_unmask_request: Callable[[UnmaskRequest], UnmaskRequest]
        | None = None,
        mask_prg: MaskPrg | str | None = None,
        client_versions: Mapping[int, int] | None = None,
        metrics: MetricsRegistry | None = None,
        fail_at_phase: int | None = None,
        wire_codec: str | None = None,
    ) -> None:
        if not vectors:
            raise ConfigurationError("cohort must not be empty")
        if phase_timeout <= 0:
            raise ConfigurationError(
                f"phase_timeout must be > 0, got {phase_timeout}"
            )
        self._cohort = tuple(sorted(vectors))
        if not 2 <= threshold <= len(self._cohort):
            raise ConfigurationError(
                f"threshold must lie in [2, {len(self._cohort)}], "
                f"got {threshold}"
            )
        dimensions = {np.asarray(v).shape for v in vectors.values()}
        if len(dimensions) != 1 or len(next(iter(dimensions))) != 1:
            raise ConfigurationError(
                f"all vectors must share one 1-d shape, got {dimensions}"
            )
        self._vectors = {
            u: np.asarray(vectors[u], dtype=np.int64) for u in self._cohort
        }
        self._dimension = next(iter(dimensions))[0]
        self._modulus = modulus
        self._threshold = threshold
        self._clock = clock
        self._plans = dict(plans or {})
        self._phase_timeout = phase_timeout
        self._group = group if group is not None else TOY_GROUP
        self._field = field
        self._trace = trace
        self._tamper = tamper_unmask_request
        self._mask_prg = get_mask_prg(mask_prg)
        self._wire_codec = wire_codec
        self._client_versions = dict(client_versions or {})
        if fail_at_phase is not None and not (
            ROUND_ADVERTISE <= fail_at_phase <= ROUND_UNMASK
        ):
            raise ConfigurationError(
                f"fail_at_phase must lie in [{ROUND_ADVERTISE}, "
                f"{ROUND_UNMASK}] or be None, got {fail_at_phase}"
            )
        self._fail_at_phase = fail_at_phase
        # Spawn per-client generators in sorted order, like run_bonawitz.
        # The upper endpoint is exclusive, so 2**63 makes the full
        # 63-bit seed range reachable.
        self._client_rngs = {
            u: np.random.default_rng(int(rng.integers(0, 2**63)))
            for u in self._cohort
        }
        self._inbox = Mailbox(clock)
        self._boxes = {u: Mailbox(clock) for u in self._cohort}
        # Abort introspection for hierarchical orchestration: on an
        # AggregationError these record which phase failed and which
        # cohort members had delivered it — before the masking phase
        # commits, those survivors can be re-homed to a sibling shard
        # instead of being dropped with their shard.
        self.abort_phase: int | None = None
        self.survivors_at_abort: frozenset[int] = frozenset()
        # Live client sessions, registered as their tasks spawn so the
        # server can batch-warm the pairwise DH agreements.
        self._live_clients: dict[int, ClientSession] = {}
        self._metrics = metrics
        if metrics is not None:
            self._m_sim_phase = metrics.histogram(
                "secagg_phase_sim_duration_seconds",
                "Simulated seconds per protocol phase.",
            )
            self._m_wall_phase = metrics.histogram(
                "secagg_phase_wall_duration_seconds",
                "Wall-clock compute seconds per protocol phase.",
            )
            self._m_rounds = metrics.counter(
                "secagg_rounds_total",
                "Secure-aggregation rounds finished, by outcome.",
            )
            self._m_dropped = metrics.counter(
                "secagg_clients_dropped_total",
                "Cohort members that dropped or straggled out, by phase.",
            )
            self._m_timeouts = metrics.counter(
                "secagg_phase_timeouts_total",
                "Phases the server closed at the deadline, by phase.",
            )
            self._m_ignored = metrics.counter(
                "secagg_messages_ignored_total",
                "Datagrams ignored: stragglers, duplicates, unknown "
                "senders.",
            )
            self._m_wire_messages = metrics.counter(
                "secagg_wire_messages_total",
                "Protocol messages on the wire, by phase and direction.",
            )
            self._m_wire_bytes = metrics.counter(
                "secagg_wire_bytes_total",
                "Serialized bytes on the wire, by phase and direction.",
            )
        else:
            self._m_sim_phase = self._m_wall_phase = None
            self._m_rounds = self._m_dropped = None
            self._m_timeouts = self._m_ignored = None
            self._m_wire_messages = self._m_wire_bytes = None

    def _plan(self, client: int) -> ClientPlan:
        return self._plans.get(client, ClientPlan())

    def _record(self, kind: str, **details) -> None:
        if self._trace is not None:
            self._trace.record(kind, **details)

    def _phase_span(self, tag: str):
        """A dual-clock span for one phase, or a no-op without metrics."""
        if self._metrics is None:
            return contextlib.nullcontext()
        return time_phase(
            tag,
            clock=self._clock,
            sim_histogram=self._m_sim_phase.labels(phase=tag),
            wall_histogram=self._m_wall_phase.labels(phase=tag),
        )

    def _count_round(self, outcome: str) -> None:
        if self._m_rounds is not None:
            self._m_rounds.labels(outcome=outcome).inc()

    def _count_dropped(self, phase: int) -> None:
        if self._m_dropped is not None:
            self._m_dropped.labels(phase=_TAGS[phase]).inc()

    def _count_wire(self, tag: str, totals: Mapping[str, int]) -> None:
        if self._m_wire_messages is None:
            return
        for direction in ("up", "down"):
            messages = totals.get(f"{direction}_messages", 0)
            if messages:
                self._m_wire_messages.labels(
                    phase=tag, direction=direction
                ).inc(messages)
            volume = totals.get(f"{direction}_bytes", 0)
            if volume:
                self._m_wire_bytes.labels(
                    phase=tag, direction=direction
                ).inc(volume)

    async def run(self) -> RoundOutcome:
        """Execute the round; returns the outcome or raises on failure.

        Raises:
            AggregationError: If any phase falls below the threshold, or
                a client refused a (tampered) unmask request.
        """
        started_at = self._clock.now
        tasks = {
            u: asyncio.ensure_future(self._client_task(u))
            for u in self._cohort
        }
        server_error: AggregationError | None = None
        try:
            outcome = await self._server_task(started_at)
        except AggregationError as error:
            server_error = error
        finally:
            for task in tasks.values():
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks.values(), return_exceptions=True)
        if server_error is not None:
            self._count_round("aborted")
            # Prefer a client-side protocol rejection as the root cause
            # (e.g. the overlap-refusal rule): the server's threshold
            # failure is its downstream symptom.  Checked *after* the
            # teardown gather so a refusal that completes only once the
            # cancellation sweep lets the task run (it was already past
            # its last await) is still surfaced.
            for u in self._cohort:
                task = tasks[u]
                if task.done() and not task.cancelled() and task.exception():
                    raise task.exception() from server_error
            raise server_error
        # Surface client failures even when the server recovered a sum.
        for u in self._cohort:
            task = tasks[u]
            if task.done() and not task.cancelled() and task.exception():
                self._count_round("aborted")
                raise task.exception()
        self._count_round("completed")
        return outcome

    async def _server_task(self, started_at: float) -> RoundOutcome:
        session = ServerSession(
            self._modulus,
            self._dimension,
            self._threshold,
            self._field,
            self._group,
            self._mask_prg,
            tamper_unmask_request=self._tamper,
            metrics=self._metrics,
            wire_codec=self._wire_codec,
        )
        # Phase 0 is the only one where the cohort (the transport's
        # knowledge) defines who may deliver; afterwards the session
        # tracks the shrinking participant set itself.
        expected = set(self._cohort)
        deliveries: dict[int, bytes] = {}
        observing = self._trace is not None or self._metrics is not None
        for phase in (
            ROUND_ADVERTISE,
            ROUND_SHARE_KEYS,
            ROUND_MASKED_INPUT,
            ROUND_UNMASK,
        ):
            tag = _TAGS[phase]
            if self._fail_at_phase == phase:
                self.abort_phase = phase
                self.survivors_at_abort = frozenset(session.received())
                self._record("chaos-server-kill", phase=tag)
                raise ChaosKillError(
                    f"chaos: server killed before the {tag} phase committed"
                )
            with self._phase_span(tag):
                datagrams = await self._collect(tag, expected=expected)
                for sender, payload in datagrams.items():
                    session.receive(payload, sender=sender)
                try:
                    deliveries = session.advance()
                except AggregationError:
                    self.abort_phase = phase
                    self.survivors_at_abort = frozenset(session.received())
                    raise
                if phase == ROUND_ADVERTISE:
                    # Pre-derive the accepted roster's pairwise DH keys
                    # in one vectorised sweep (pure memoisation warm-up;
                    # the rejected clients' keys would never be used).
                    warm_pairwise_agreements(
                        [
                            self._live_clients[u].crypto
                            for u in sorted(session.expected)
                            if u in self._live_clients
                        ]
                    )
                    for client, reason in session.rejections.items():
                        self._record(
                            "client-rejected", client=client, reason=reason
                        )
                if session.tampered and phase == ROUND_MASKED_INPUT:
                    self._record("unmask-request-tampered")
                if phase != ROUND_UNMASK:
                    self._broadcast(deliveries, among=expected)
                expected = set(session.expected)
            if observing:
                # Each phase writes its wire cells exactly once, so the
                # per-tag totals are the phase delta — no ledger
                # snapshot/diff in the hot loop.
                totals = session.stats.phase_summary(tag)
                if totals is not None:
                    self._record("wire-phase", phase=tag, **totals)
                    self._count_wire(tag, totals)
        modular_sum = session.modular_sum
        completed_at = self._clock.now
        included = session.included
        self._record(
            "round-complete",
            included=len(included),
            dropped=len(self._cohort) - len(included),
            wire_messages=session.stats.total_messages,
            wire_bytes=session.stats.total_bytes,
        )
        return RoundOutcome(
            modular_sum=modular_sum,
            included=included,
            dropped=frozenset(self._cohort) - included,
            started_at=started_at,
            completed_at=completed_at,
            wire=session.stats,
        )

    async def _collect(self, tag: str, expected: set[int]) -> dict[int, bytes]:
        """Gather one phase's datagrams until complete or deadline.

        Messages from unexpected senders, duplicate senders, or earlier
        phases (stragglers whose phase already closed) are ignored and
        traced.
        """
        deadline = self._clock.now + self._phase_timeout
        collected: dict[int, bytes] = {}
        while len(collected) < len(expected):
            item = await self._inbox.get_before(deadline)
            if item is None:
                self._record(
                    "phase-timeout",
                    phase=tag,
                    missing=sorted(expected - set(collected)),
                )
                if self._m_timeouts is not None:
                    self._m_timeouts.labels(phase=tag).inc()
                break
            sender, sender_tag, payload = item
            if sender_tag != tag or sender not in expected or (
                sender in collected
            ):
                self._record(
                    "message-ignored", sender=sender, phase=sender_tag,
                    during=tag,
                )
                if self._m_ignored is not None:
                    self._m_ignored.inc()
                continue
            collected[sender] = payload
            self._record("message-received", sender=sender, phase=tag)
        return collected

    def _broadcast(
        self, deliveries: dict[int, bytes], among: set[int]
    ) -> None:
        """Send each recipient its datagram; pool members with nothing
        addressed to them get the shutdown sentinel so their tasks
        terminate instead of hanging."""
        for u in sorted(among | set(deliveries)):
            if u in deliveries:
                self._boxes[u].put(deliveries[u])
            else:
                self._boxes[u].put(_EXCLUDED)
                self._record("client-excluded", client=u)

    async def _client_task(self, index: int) -> None:
        plan = self._plan(index)
        session = ClientSession(
            index=index,
            vector=self._vectors[index],
            modulus=self._modulus,
            threshold=self._threshold,
            rng=self._client_rngs[index],
            group=self._group,
            field=self._field,
            mask_prg=self._mask_prg,
            version=self._client_versions.get(index, PROTOCOL_V1),
            metrics=self._metrics,
            wire_codec=self._wire_codec,
        )
        self._live_clients[index] = session
        # Phase 0 — propose the header and advertise both public keys.
        if not plan.responds_at(ROUND_ADVERTISE):
            self._record("client-dropped", client=index, phase=ROUND_ADVERTISE)
            self._count_dropped(ROUND_ADVERTISE)
            return
        await self._clock.sleep(plan.latencies[ROUND_ADVERTISE])
        self._send(index, ROUND_ADVERTISE, b"".join(session.start()))
        # Phases 1-3 — receive the server's datagram, respond in kind.
        for phase in (ROUND_SHARE_KEYS, ROUND_MASKED_INPUT, ROUND_UNMASK):
            data = await self._boxes[index].get()
            if data is _EXCLUDED:
                return
            if not plan.responds_at(phase):
                self._record("client-dropped", client=index, phase=phase)
                self._count_dropped(phase)
                return
            responses = session.handle(data)
            if session.rejected is not None:
                # Typed negotiation failure: the task ends cleanly; the
                # error stays inspectable on the session.
                self._record(
                    "client-rejected-ack",
                    client=index,
                    reason=str(session.rejected),
                )
                return
            await self._clock.sleep(plan.latencies[phase])
            self._send(index, phase, b"".join(responses))

    def _send(self, sender: int, phase: int, payload: bytes) -> None:
        self._inbox.put((sender, _TAGS[phase], payload))
