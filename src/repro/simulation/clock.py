"""Deterministic simulated clock: asyncio without wall time.

Federated rounds are full of waiting — upload latencies, phase
deadlines, straggler timeouts.  Simulating them against the wall clock
would make every run slow *and* nondeterministic (task wake-up order
would depend on OS scheduling jitter).  :class:`SimulatedClock` removes
wall time from the picture entirely:

* coroutines wait with ``await clock.sleep(delay)`` (or via the
  clock-aware primitives in :mod:`repro.simulation.events`), which
  registers a timer on the clock's heap instead of the event loop's
  wall-clock timer wheel;
* :meth:`SimulatedClock.run` drives the asyncio event loop until every
  task is blocked on a clock timer (*quiescence*), then pops the
  earliest timer, advances ``now`` to its due time, fires it, and
  settles again — the classic discrete-event simulation loop.

Quiescence is detected exactly, not heuristically: the clock runs the
program on a private event loop that counts ready-queue insertions
(every task wake-up in asyncio — future resolution, task creation,
``sleep(0)`` — goes through ``call_soon``).  After yielding, if the only
insertion was the driver's own re-queue, every other task has run as far
as it can without the clock advancing.

Determinism: timers fire in (time, registration order) — a total order —
and asyncio's ready queue is FIFO, so a simulation whose tasks only
suspend on clock primitives replays bit-identically for a fixed seed.

Constraints on simulation code (enforced by failure, documented here):
tasks must not await wall-clock primitives (``asyncio.sleep(dt)`` with
``dt > 0``) and must not busy-loop over bare ``asyncio.sleep(0)``;
either would stall or break the advance loop.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from collections.abc import Callable, Coroutine
from typing import Any

from repro.errors import ConfigurationError, SimulationError

#: Upper bound on settle passes between clock advances; a simulation that
#: schedules work this many loop iterations deep without touching the
#: clock is assumed to be busy-looping.
DEFAULT_MAX_SETTLE_PASSES = 100_000


class _CountingEventLoop(asyncio.SelectorEventLoop):
    """A selector loop that counts ready-queue insertions.

    Every asyncio wake-up path (future resolution, task creation,
    ``asyncio.sleep(0)`` re-queues) funnels through :meth:`call_soon`,
    so the insertion counter is an exact record of scheduling activity.
    """

    def __init__(self) -> None:
        super().__init__()
        self.insertions = 0

    def call_soon(self, callback, *args, context=None):
        self.insertions += 1
        return super().call_soon(callback, *args, context=context)


class SimulatedClock:
    """A discrete-event clock that drives asyncio deterministically.

    Args:
        start: Initial simulated time (seconds; an arbitrary epoch).
        max_settle_passes: Safety bound on event-loop iterations between
            two clock advances, to fail fast on busy-looping tasks.
    """

    def __init__(
        self,
        start: float = 0.0,
        max_settle_passes: int = DEFAULT_MAX_SETTLE_PASSES,
    ) -> None:
        if max_settle_passes < 1:
            raise ConfigurationError(
                f"max_settle_passes must be >= 1, got {max_settle_passes}"
            )
        self._now = float(start)
        self._timers: list[tuple[float, int, Any]] = []
        self._sequence = itertools.count()
        self._max_settle_passes = max_settle_passes
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending_timers(self) -> int:
        """Number of registered timers that have not fired yet."""
        return len(self._timers)

    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for ``delay`` simulated seconds.

        Args:
            delay: Non-negative simulated duration; ``0`` still suspends
                until the next clock advance, providing a deterministic
                yield point.
        """
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        future = asyncio.get_running_loop().create_future()
        self._register(self._now + delay, future)
        await future

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback()`` at simulated time ``when``.

        Times in the past are clamped to ``now`` (the callback fires on
        the next advance).  Used by the event primitives to implement
        deadlines.
        """
        self._register(max(when, self._now), callback)

    def _register(self, when: float, action: Any) -> None:
        heapq.heappush(self._timers, (when, next(self._sequence), action))

    def run(self, main: Coroutine[Any, Any, Any]) -> Any:
        """Run ``main`` to completion under simulated time.

        Creates a private event loop, so it can be called from ordinary
        synchronous code (and called again for subsequent rounds — the
        clock's time and any unfired timers persist across calls).

        Args:
            main: The root coroutine of the simulation.

        Returns:
            ``main``'s return value.

        Raises:
            SimulationError: On deadlock (all tasks blocked, no timer
                pending) or a busy-looping task.
        """
        if self._running:
            main.close()
            raise SimulationError("SimulatedClock.run is not reentrant")
        loop = _CountingEventLoop()
        self._running = True
        try:
            return loop.run_until_complete(self._drive(loop, main))
        finally:
            self._running = False
            loop.close()

    async def _drive(
        self, loop: _CountingEventLoop, main: Coroutine[Any, Any, Any]
    ) -> Any:
        task = asyncio.ensure_future(main)
        try:
            while True:
                await self._settle(loop)
                if task.done():
                    break
                if not self._timers:
                    raise SimulationError(
                        "simulation deadlock: every task is waiting and no "
                        "timer is pending"
                    )
                self._fire_next()
            return task.result()
        finally:
            await self._cancel_stragglers(task)

    async def _settle(self, loop: _CountingEventLoop) -> None:
        """Yield until no task can run without the clock advancing."""
        for _ in range(self._max_settle_passes):
            before = loop.insertions
            await asyncio.sleep(0)
            # Our own re-queue accounts for exactly one insertion; any
            # second insertion means some other task was scheduled and
            # may schedule more once it runs.
            if loop.insertions == before + 1:
                return
        raise SimulationError(
            f"simulation failed to quiesce within {self._max_settle_passes} "
            "event-loop passes: a task is busy-looping without awaiting "
            "the simulated clock"
        )

    def _fire_next(self) -> None:
        """Advance to the earliest timer and fire it.

        Timers are fired one at a time (settling in between) so that the
        consequences of each event are fully processed before the next
        event of the same timestamp runs — the strictest, and therefore
        most reproducible, discrete-event semantics.
        """
        while self._timers:
            when, _, action = heapq.heappop(self._timers)
            if isinstance(action, asyncio.Future):
                if action.done():
                    continue  # Waiter was cancelled; drop the timer.
                self._now = when
                action.set_result(None)
                return
            self._now = when
            action()
            return

    async def _cancel_stragglers(self, main_task: asyncio.Future) -> None:
        """Cancel any tasks the simulation left behind, so the loop
        closes cleanly even when the run raised mid-protocol."""
        current = asyncio.current_task()
        stragglers = [
            pending
            for pending in asyncio.all_tasks()
            if pending is not current and not pending.done()
        ]
        for pending in stragglers:
            pending.cancel()
        if stragglers:
            await asyncio.gather(*stragglers, return_exceptions=True)
        if main_task.done() and not main_task.cancelled():
            main_task.exception()  # Mark retrieved; avoid warnings.
