"""Deterministic simulated clock: asyncio without wall time.

Federated rounds are full of waiting — upload latencies, phase
deadlines, straggler timeouts.  Simulating them against the wall clock
would make every run slow *and* nondeterministic (task wake-up order
would depend on OS scheduling jitter).  :class:`SimulatedClock` removes
wall time from the picture entirely:

* coroutines wait with ``await clock.sleep(delay)`` (or via the
  clock-aware primitives in :mod:`repro.simulation.events`), which
  registers a timer on the clock's heap instead of the event loop's
  wall-clock timer wheel;
* :meth:`SimulatedClock.run` drives the asyncio event loop until every
  task is blocked on a clock timer (*quiescence*), then pops the
  earliest timer, advances ``now`` to its due time, fires it, and
  settles again — the classic discrete-event simulation loop.

Quiescence is detected exactly, not heuristically: the clock runs the
program on a private event loop that counts ready-queue insertions
(every task wake-up in asyncio — future resolution, task creation,
``sleep(0)`` — goes through ``call_soon``).  After yielding, if the only
insertion was the driver's own re-queue, every other task has run as far
as it can without the clock advancing.

Determinism: timers fire in (time, registration order) — a total order —
and asyncio's ready queue is FIFO, so a simulation whose tasks only
suspend on clock primitives replays bit-identically for a fixed seed.

Constraints on simulation code (enforced by failure, documented here):
tasks must not await wall-clock primitives (``asyncio.sleep(dt)`` with
``dt > 0``) and must not busy-loop over bare ``asyncio.sleep(0)``;
either would stall or break the advance loop.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from collections.abc import Callable, Coroutine
from typing import Any

from repro.errors import ConfigurationError, SimulationError

#: Upper bound on settle passes between clock advances; a simulation that
#: schedules work this many loop iterations deep without touching the
#: clock is assumed to be busy-looping.
DEFAULT_MAX_SETTLE_PASSES = 100_000


class _CountingEventLoop(asyncio.SelectorEventLoop):
    """A selector loop that counts ready-queue insertions.

    Every asyncio wake-up path (future resolution, task creation,
    ``asyncio.sleep(0)`` re-queues) funnels through :meth:`call_soon`,
    so the insertion counter is an exact record of scheduling activity.
    """

    def __init__(self) -> None:
        super().__init__()
        self.insertions = 0

    def call_soon(self, callback, *args, context=None):
        self.insertions += 1
        return super().call_soon(callback, *args, context=context)


class TimerHandle:
    """A cancellable registration returned by :meth:`SimulatedClock.call_at`.

    Cancelling is cheap and idempotent: the heap entry is marked dead
    (and reaped lazily), the callback never runs, and — critically —
    the clock never advances ``now`` to the cancelled deadline.
    """

    __slots__ = ("_clock", "_callback", "_cancelled", "_fired")

    def __init__(
        self, clock: "SimulatedClock", callback: Callable[[], None]
    ) -> None:
        self._clock = clock
        self._callback = callback
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Withdraw the callback; a no-op if it already fired/cancelled."""
        if not self._cancelled and not self._fired:
            self._cancelled = True
            self._callback = None
            self._clock._note_cancelled()

    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled


class SimulatedClock:
    """A discrete-event clock that drives asyncio deterministically.

    Args:
        start: Initial simulated time (seconds; an arbitrary epoch).
        max_settle_passes: Safety bound on event-loop iterations between
            two clock advances, to fail fast on busy-looping tasks.
    """

    #: Compact the heap once at least this many cancelled entries are
    #: pending *and* they make up half the heap — classic lazy deletion.
    _COMPACT_MIN_CANCELLED = 16

    def __init__(
        self,
        start: float = 0.0,
        max_settle_passes: int = DEFAULT_MAX_SETTLE_PASSES,
    ) -> None:
        if max_settle_passes < 1:
            raise ConfigurationError(
                f"max_settle_passes must be >= 1, got {max_settle_passes}"
            )
        self._now = float(start)
        self._timers: list[tuple[float, int, Any]] = []
        self._sequence = itertools.count()
        self._max_settle_passes = max_settle_passes
        self._running = False
        # Heuristic count of dead heap entries, used ONLY to trigger
        # compaction.  It may lag reality (a cancelled task's sleep
        # future is dead the moment Task.cancel() runs but is noted
        # only when the waiter resumes), so nothing correctness-bearing
        # reads it — pending_timers scans the heap instead.
        self._dead_hint = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending_timers(self) -> int:
        """Number of registered timers that may still fire.

        Dead entries — cancelled :class:`TimerHandle` registrations and
        sleep futures whose waiting task was cancelled — are excluded
        even while their heap entries await lazy removal, so any
        completed round leaves this at zero.  Computed by scanning the
        heap (a diagnostics accessor, not a hot path): exact by
        construction, immune to bookkeeping races.
        """
        return sum(
            1 for entry in self._timers if not self._is_dead(entry[2])
        )

    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for ``delay`` simulated seconds.

        Args:
            delay: Non-negative simulated duration; ``0`` still suspends
                until the next clock advance, providing a deterministic
                yield point.
        """
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        future = asyncio.get_running_loop().create_future()
        self._register(self._now + delay, future)
        try:
            await future
        except asyncio.CancelledError:
            # future.cancelled() means the waiter died with its timer
            # possibly still on the heap (a task cancelled *after* its
            # wake-up leaves an uncancelled, already-popped future);
            # nudge the compaction hint so mass teardowns still reap
            # their dead entries.  An intervening compaction may have
            # removed the entry already — harmless, the hint is
            # advisory and pending_timers derives truth from the heap.
            if future.cancelled():
                self._note_cancelled()
            raise

    def call_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback()`` at simulated time ``when``.

        Times in the past are clamped to ``now`` (the callback fires on
        the next advance).  Used by the event primitives to implement
        deadlines.

        Returns:
            A :class:`TimerHandle`; callers whose deadline races another
            wake-up source **must** cancel it when the other source wins,
            otherwise the stale timer would linger on the heap until its
            due time (it still would not advance the clock — cancelled
            and already-fired entries are skipped without touching
            ``now`` — but it costs a heap pop and a settle cycle).
        """
        handle = TimerHandle(self, callback)
        self._register(max(when, self._now), handle)
        return handle

    def advance_to(self, when: float) -> None:
        """Move ``now`` forward to ``when`` without firing any timer.

        The seam through which externally simulated work (e.g. shard
        sub-rounds executed on their own clocks, possibly in other
        processes) deposits its elapsed simulated time back into the
        parent clock.  Only meaningful between :meth:`run` calls, on a
        clock with no live timer due before ``when`` — jumping past one
        would rewind ``now`` when it eventually fired.

        Raises:
            SimulationError: If called while :meth:`run` is driving the
                loop, or if a live timer is due before ``when`` —
                either way time would be silently reordered.
        """
        if self._running:
            raise SimulationError(
                "advance_to is only valid between run() calls"
            )
        when = float(when)
        live = [
            entry[0]
            for entry in self._timers
            if not self._is_dead(entry[2])
        ]
        if live and min(live) < when:
            raise SimulationError(
                f"cannot advance to {when}: a live timer is due at "
                f"{min(live)}"
            )
        self._now = max(self._now, when)

    def _register(self, when: float, action: Any) -> None:
        heapq.heappush(self._timers, (when, next(self._sequence), action))

    @staticmethod
    def _is_dead(action: Any) -> bool:
        """Whether a heap entry can never fire (skipped without
        advancing time): a cancelled handle, or a sleep future whose
        waiter was cancelled (the only way a heap-resident future is
        already done — firing pops the entry before resolving it)."""
        if isinstance(action, TimerHandle):
            return action.cancelled()
        return action.done()

    def _note_cancelled(self) -> None:
        """Note one dead entry; compact the heap when dead entries
        appear to dominate it (amortised O(1) per cancellation).  The
        hint is advisory — compaction itself re-derives the truth by
        filtering, and resets the hint."""
        self._dead_hint += 1
        if (
            self._dead_hint >= self._COMPACT_MIN_CANCELLED
            and self._dead_hint * 2 >= len(self._timers)
        ):
            self._timers = [
                entry for entry in self._timers if not self._is_dead(entry[2])
            ]
            heapq.heapify(self._timers)
            self._dead_hint = 0

    def run(self, main: Coroutine[Any, Any, Any]) -> Any:
        """Run ``main`` to completion under simulated time.

        Creates a private event loop, so it can be called from ordinary
        synchronous code (and called again for subsequent rounds — the
        clock's time and any unfired timers persist across calls).

        Args:
            main: The root coroutine of the simulation.

        Returns:
            ``main``'s return value.

        Raises:
            SimulationError: On deadlock (all tasks blocked, no timer
                pending) or a busy-looping task.
        """
        if self._running:
            main.close()
            raise SimulationError("SimulatedClock.run is not reentrant")
        loop = _CountingEventLoop()
        self._running = True
        try:
            return loop.run_until_complete(self._drive(loop, main))
        finally:
            self._running = False
            loop.close()

    async def _drive(
        self, loop: _CountingEventLoop, main: Coroutine[Any, Any, Any]
    ) -> Any:
        task = asyncio.ensure_future(main)
        try:
            while True:
                await self._settle(loop)
                if task.done():
                    break
                if not self._timers:
                    raise SimulationError(
                        "simulation deadlock: every task is waiting and no "
                        "timer is pending"
                    )
                self._fire_next()
            return task.result()
        finally:
            await self._cancel_stragglers(task)

    async def _settle(self, loop: _CountingEventLoop) -> None:
        """Yield until no task can run without the clock advancing."""
        for _ in range(self._max_settle_passes):
            before = loop.insertions
            await asyncio.sleep(0)
            # Our own re-queue accounts for exactly one insertion; any
            # second insertion means some other task was scheduled and
            # may schedule more once it runs.
            if loop.insertions == before + 1:
                return
        raise SimulationError(
            f"simulation failed to quiesce within {self._max_settle_passes} "
            "event-loop passes: a task is busy-looping without awaiting "
            "the simulated clock"
        )

    def _fire_next(self) -> None:
        """Advance to the earliest *live* timer and fire it.

        Timers are fired one at a time (settling in between) so that the
        consequences of each event are fully processed before the next
        event of the same timestamp runs — the strictest, and therefore
        most reproducible, discrete-event semantics.

        Dead entries — cancelled :class:`TimerHandle`\\ s and futures
        whose waiter was cancelled — are dropped **without advancing
        time**: a deadline that lost its race must leave no trace on the
        simulated timeline, or round durations would drift toward phase
        deadlines that never actually expired.
        """
        while self._timers:
            when, _, action = heapq.heappop(self._timers)
            if isinstance(action, TimerHandle):
                if action.cancelled():
                    self._dead_hint = max(0, self._dead_hint - 1)
                    continue  # Withdrawn deadline; time does not move.
                action._fired = True
                self._now = when
                action._callback()
                return
            if action.done():
                self._dead_hint = max(0, self._dead_hint - 1)
                continue  # Waiter was cancelled; drop the timer.
            self._now = when
            action.set_result(None)
            return

    async def _cancel_stragglers(self, main_task: asyncio.Future) -> None:
        """Cancel any tasks the simulation left behind, so the loop
        closes cleanly even when the run raised mid-protocol."""
        current = asyncio.current_task()
        stragglers = [
            pending
            for pending in asyncio.all_tasks()
            if pending is not current and not pending.done()
        ]
        for pending in stragglers:
            pending.cancel()
        if stragglers:
            await asyncio.gather(*stragglers, return_exceptions=True)
        if main_task.done() and not main_task.cancelled():
            main_task.exception()  # Mark retrieved; avoid warnings.
