"""Sharded secure aggregation: k Bonawitz sub-rounds composed modularly.

A flat Bonawitz round costs ``O(n^2)`` in pairwise masks and Shamir
shares, which caps the cohort size a single round can afford.  This
module opens the next scaling axis the way production federations do
(DDP-SA, Wei et al.; the hybrid approach of Truex et al.): partition
the round's cohort into ``k`` shards, run one *independent*
dropout-tolerant :class:`~repro.simulation.rounds.AsyncSecAggRound` per
shard — each with its own Shamir threshold, phase deadlines, and
private :class:`~repro.simulation.clock.SimulatedClock` — and compose
the shard sums with an outer modular addition
(:func:`repro.secagg.compose.compose_shard_sums`), which is
bit-identical to the flat sum over the union of the shards' survivors.

Cost: ``k`` shards of ``n/k`` clients do ``O(n^2 / k)`` total protocol
work, and the shards are embarrassingly parallel.  The
:class:`ExecutionBackend` knob chooses how they run:

* ``"inline"`` (default) — sequentially in this process; zero overhead,
  ideal for tests and small cohorts.
* ``"process"`` — fanned out over a reusable
  :class:`concurrent.futures.ProcessPoolExecutor`, one OS process per
  worker, for multi-core hosts; shard vectors cross the process
  boundary through a reusable shared-memory block
  (:mod:`repro.simulation.shm`).
* ``"process-pickle"`` — the same pool with vectors shipped inside the
  task pickle (the vector-transport comparison baseline).

Both backends produce **bit-identical results**: every shard derives
its protocol randomness from a spawn-keyed
:class:`numpy.random.SeedSequence` — ``SeedSequence(entropy,
spawn_key=(shard_index,))`` with the entropy drawn once from the
round's RNG before dispatch — so no state crosses the process boundary
except the picklable :class:`ShardTask`.

Simulated time composes as a real parallel deployment's would: every
shard's private clock starts at the parent clock's ``now``, the round
completes when the *slowest* shard completes, and the parent clock is
advanced to that instant (:meth:`SimulatedClock.advance_to`).  Shard
traces are merged into the parent trace, each event annotated with its
shard index, in deterministic (time, shard) order.

Failure semantics are hierarchical: a shard whose survivor count falls
below its Shamir threshold aborts *alone* — its members count as
dropped for the round and the remaining shards' sums still compose
(or, with rebalancing enabled on the orchestrator, pre-masking
survivors are re-homed to sibling shards first).  Only if every shard
aborts does the round raise :class:`~repro.errors.AggregationError`,
mirroring the flat driver.

This module holds the level-agnostic primitives — partition rule,
threshold rule, picklable shard tasks/reports, and the execution
backends.  Orchestration lives in :mod:`repro.simulation.hierarchy`
(:class:`~repro.simulation.hierarchy.HierarchicalSecAggRound` and its
legacy flat-tree alias ``ShardedSecAggRound``, re-exported here for
backward compatibility).
"""

from __future__ import annotations

import abc
import dataclasses
import math
import os
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.tree import MIN_SHARD_SIZE, partition_members
from repro.simulation.clock import SimulatedClock
from repro.simulation.events import SimulationTrace, TraceEvent
from repro.simulation.population import ClientPlan
from repro.simulation.rounds import AsyncSecAggRound, RoundOutcome
from repro.simulation.shm import (
    SharedMemoryTransport,
    ShmVectorBlock,
    WorkerBlock,
    shared_memory_available,
)
from repro.telemetry.registry import MetricsRegistry, MetricsSnapshot

__all__ = [
    "MIN_SHARD_SIZE",
    "DEFAULT_BACKEND",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "ShardReport",
    "ShardTask",
    "ShardedSecAggRound",
    "get_execution_backend",
    "partition_cohort",
    "run_shard",
    "shamir_threshold",
    "validate_threshold_fraction",
]

#: Hard cap on pool width; shards beyond it queue on existing workers.
_MAX_POOL_WORKERS = 16


def validate_threshold_fraction(threshold_fraction: float) -> float:
    """Validate a Shamir threshold fraction; returns it unchanged.

    The single ``(0, 1]`` range check (and single error message) shared
    by :func:`shamir_threshold`, the hierarchical round orchestrators,
    and the simulation config — every layer rejects a bad fraction the
    same way.

    Raises:
        ConfigurationError: If the fraction is outside ``(0, 1]``.
    """
    if not 0 < threshold_fraction <= 1:
        raise ConfigurationError(
            f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
        )
    return threshold_fraction


def shamir_threshold(threshold_fraction: float, cohort_size: int) -> int:
    """The Shamir reconstruction threshold for a cohort (or shard).

    ``max(2, ceil(threshold_fraction * cohort_size))`` — the single
    definition shared by the flat engine path, the per-shard sub-rounds,
    and the throughput benchmarks, so flat-vs-sharded comparisons always
    run under the same dropout-tolerance rule.
    """
    validate_threshold_fraction(threshold_fraction)
    return max(2, math.ceil(threshold_fraction * cohort_size))


def partition_cohort(
    cohort: Iterable[int], shards: int
) -> list[tuple[int, ...]]:
    """Deterministically partition a cohort into balanced shards.

    Round-robin over the sorted member list: shard ``i`` receives every
    ``k``-th member starting at offset ``i``, so shard sizes differ by
    at most one and the assignment depends only on the cohort and ``k``.
    The effective shard count is capped so every shard keeps at least
    :data:`MIN_SHARD_SIZE` members (a smaller cohort simply gets fewer
    shards, down to one).

    Args:
        cohort: Client indices (1-based, any order, no duplicates).
        shards: Requested shard count ``k >= 1``.

    Returns:
        Non-empty member tuples, sorted within and across shards.

    Raises:
        ConfigurationError: If ``shards < 1`` or the cohort is empty.
    """
    return partition_members(cohort, shards)


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """Everything one shard sub-round needs — picklable by design, so
    the process backend ships it to a worker unchanged.

    Attributes:
        shard_index: Position of this shard in the partition (also the
            spawn key selecting its RNG stream).
        vectors: The shard members' private input vectors.
        modulus: Aggregation modulus ``m``.
        threshold: This shard's Shamir reconstruction threshold.
        start_time: Parent clock ``now`` at round start; the shard's
            private clock starts here so timestamps share one epoch.
        entropy: Round-scoped seed material; the shard's RNG is
            ``default_rng(SeedSequence(entropy, spawn_key=(shard_index,)))``.
        plans: Behaviour plans for the shard's members.
        phase_timeout: Per-phase server deadline (simulated seconds).
        mask_prg: Mask PRG backend *name* (instances may not pickle).
        shm: When set, ``vectors`` is empty and the inputs (plus the
            result row) live in the shared-memory block this descriptor
            names — the :mod:`repro.simulation.shm` vector transport.
        collect_metrics: When true the worker meters its sub-round into
            a private registry and ships the (picklable) snapshot back
            on the report for the parent to absorb under a ``shard``
            label.
        attempt: Execution attempt for this shard within the round
            (0 = initial dispatch).  Straggler rebalancing re-runs a
            shard with re-homed members as attempt 1; the attempt
            extends the RNG spawn key so the retry draws a fresh —
            but still deterministic — protocol stream, while attempt 0
            keeps the legacy ``(shard_index,)`` key bit-identically.
    """

    shard_index: int
    vectors: dict[int, np.ndarray]
    modulus: int
    threshold: int
    start_time: float
    entropy: int
    plans: dict[int, ClientPlan]
    phase_timeout: float
    mask_prg: str | None = None
    shm: "ShmVectorBlock | None" = None
    collect_metrics: bool = False
    attempt: int = 0


@dataclasses.dataclass(frozen=True)
class ShardReport:
    """One shard sub-round's complete result, back from any backend.

    Attributes:
        shard_index: Which shard this reports on.
        members: The shard's cohort slice.
        outcome: The sub-round outcome, or ``None`` if the shard
            aborted below its threshold.
        error: The abort reason when ``outcome`` is ``None``.
        ended_at: Shard-clock time the sub-round finished (success or
            abort) — the round completes at the max across shards.
        events: The shard's trace events (its private clock shares the
            parent's epoch, so times merge directly).
        pending_timers: Shard-clock leak counter at exit; zero when the
            timer-cancellation contract held.
        metrics: Snapshot of the shard's private metrics registry when
            the task asked for one (``collect_metrics``), else ``None``.
            Frozen tuples all the way down, so it pickles across the
            process boundary unchanged.
        abort_phase: On abort, the protocol phase whose threshold check
            failed (``None`` on success).  Aborts at a phase before
            ``ROUND_MASKED_INPUT`` happened before any masked input was
            committed, so the survivors are still eligible for
            rebalancing to a sibling shard.
        survivors: On abort, the members that had delivered the failing
            phase — the rebalancing candidates.
        attempt: Which execution attempt produced this report (mirrors
            :attr:`ShardTask.attempt`).
    """

    shard_index: int
    members: tuple[int, ...]
    outcome: RoundOutcome | None
    error: str | None
    ended_at: float
    events: tuple[TraceEvent, ...]
    pending_timers: int
    metrics: MetricsSnapshot | None = None
    abort_phase: int | None = None
    survivors: tuple[int, ...] = ()
    attempt: int = 0


def run_shard(task: ShardTask) -> ShardReport:
    """Execute one shard's Bonawitz sub-round on a private clock.

    Module-level (not a method) so :class:`ProcessBackend` can pickle a
    bare reference to it; the inline backend calls it directly.

    When the task rode the shared-memory vector transport, the inputs
    are read out of the block here and the composed sum is written back
    into the task's result row (the returned outcome then carries an
    empty placeholder the parent restores) — identical int64 values
    either way, so results are bit-identical across transports.
    """
    vectors = task.vectors
    block: WorkerBlock | None = None
    if task.shm is not None:
        block = WorkerBlock(task.shm)
        vectors = block.read_vectors()
    clock = SimulatedClock(start=task.start_time)
    trace = SimulationTrace(clock)
    registry = MetricsRegistry() if task.collect_metrics else None
    # Attempt 0 keeps the legacy single-element spawn key so existing
    # rounds stay bit-identical; a rebalancing retry extends it.
    spawn_key = (
        (task.shard_index,)
        if task.attempt == 0
        else (task.shard_index, task.attempt)
    )
    rng = np.random.default_rng(
        np.random.SeedSequence(task.entropy, spawn_key=spawn_key)
    )
    sub_round = AsyncSecAggRound(
        vectors=vectors,
        modulus=task.modulus,
        threshold=task.threshold,
        clock=clock,
        rng=rng,
        plans=task.plans,
        phase_timeout=task.phase_timeout,
        trace=trace,
        mask_prg=task.mask_prg,
        metrics=registry,
    )
    outcome: RoundOutcome | None = None
    error: str | None = None
    try:
        outcome = clock.run(sub_round.run())
    except AggregationError as aggregation_error:
        error = str(aggregation_error)
    if block is not None:
        if outcome is not None:
            block.write_result(outcome.modular_sum)
            outcome = dataclasses.replace(
                outcome, modular_sum=np.empty(0, dtype=np.int64)
            )
        block.close()
    return ShardReport(
        shard_index=task.shard_index,
        members=tuple(sorted(vectors)),
        outcome=outcome,
        error=error,
        ended_at=clock.now,
        events=tuple(trace.events),
        pending_timers=clock.pending_timers,
        metrics=registry.snapshot() if registry is not None else None,
        abort_phase=sub_round.abort_phase if error is not None else None,
        survivors=tuple(sorted(sub_round.survivors_at_abort))
        if error is not None
        else (),
        attempt=task.attempt,
    )


class ExecutionBackend(abc.ABC):
    """How a round's shard sub-rounds are executed.

    Backends are pure executors: they receive picklable
    :class:`ShardTask`\\ s, run :func:`run_shard` on each, and return
    the reports **in task order** — determinism never depends on
    completion order.
    """

    #: Wire/CLI name of the backend.
    name: str = "abstract"

    @abc.abstractmethod
    def run_shards(self, tasks: Sequence[ShardTask]) -> list[ShardReport]:
        """Execute every task; reports align with ``tasks`` by index."""

    def warm(self) -> None:
        """Eagerly acquire lazy resources (worker processes), so
        start-up cost lands here rather than in the first round —
        benchmarks call this before starting their timers."""

    def close(self) -> None:
        """Release held resources (worker processes); idempotent."""


class InlineBackend(ExecutionBackend):
    """Run shards sequentially in the calling process (the default)."""

    name = "inline"

    def run_shards(self, tasks: Sequence[ShardTask]) -> list[ShardReport]:
        return [run_shard(task) for task in tasks]


class ProcessBackend(ExecutionBackend):
    """Fan shards out over a reusable OS-process pool.

    The pool is created lazily on first use and reused across rounds
    (worker start-up would otherwise dominate small rounds); call
    :meth:`close` — or use the backend as a context manager — to reap
    the workers.

    Args:
        max_workers: Pool width; defaults to
            ``min(cpu_count, _MAX_POOL_WORKERS)`` but at least 2, so
            shards overlap even where the container under-reports cores.
        vector_transport: How shard input vectors (and result sums)
            cross the process boundary — ``"shm"`` (default) moves them
            through one :mod:`multiprocessing.shared_memory` block per
            round (:mod:`repro.simulation.shm`), ``"pickle"`` ships
            them inside the task pickle.  Results are bit-identical;
            shm skips the vector serialisation entirely.  Platforms
            without shared memory fall back to pickle transparently.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        vector_transport: str = "shm",
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if vector_transport not in ("shm", "pickle"):
            raise ConfigurationError(
                "vector_transport must be 'shm' or 'pickle', got "
                f"{vector_transport!r}"
            )
        self._max_workers = max_workers
        self._vector_transport = vector_transport
        if vector_transport == "pickle":
            self.name = "process-pickle"
        self._pool = None
        # One shared block reused across every round this backend runs;
        # built lazily, released with the pool.
        self._shm_transport: SharedMemoryTransport | None = None

    @property
    def effective_transport(self) -> str:
        """The vector transport actually in use on this platform —
        requested ``"shm"`` degrades to ``"pickle"`` where POSIX shared
        memory is unavailable."""
        if self._vector_transport == "shm" and shared_memory_available():
            return "shm"
        return "pickle"

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            workers = self._max_workers
            if workers is None:
                workers = min(
                    max(os.cpu_count() or 1, 2), _MAX_POOL_WORKERS
                )
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def run_shards(self, tasks: Sequence[ShardTask]) -> list[ShardReport]:
        # map() preserves task order regardless of completion order.
        pool = self._ensure_pool()
        if self._vector_transport == "shm" and shared_memory_available():
            if self._shm_transport is None:
                self._shm_transport = SharedMemoryTransport()
            transport = self._shm_transport
            try:
                packed = transport.pack(tasks)
                return transport.unpack(
                    list(pool.map(run_shard, packed))
                )
            except BaseException:
                # A worker crash (or mid-round cancellation) unwinds
                # through here with the block's contents suspect and
                # nobody left to unpack them: unlink the named segment
                # now instead of leaking it until interpreter exit.
                self._shm_transport = None
                transport.close()
                raise
        return list(pool.map(run_shard, tasks))

    def warm(self) -> None:
        self._ensure_pool()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shm_transport is not None:
            self._shm_transport.close()
            self._shm_transport = None

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _pickle_process_backend() -> ProcessBackend:
    """Registry factory for the pickle-transport process backend."""
    return ProcessBackend(vector_transport="pickle")


#: Backend registry, keyed by wire/CLI name.
EXECUTION_BACKENDS = {
    InlineBackend.name: InlineBackend,
    ProcessBackend.name: ProcessBackend,
    "process-pickle": _pickle_process_backend,
}

#: The backend used when none is requested.
DEFAULT_BACKEND = InlineBackend.name


def get_execution_backend(
    backend: ExecutionBackend | str | None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    Raises:
        ConfigurationError: For an unknown backend name.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = EXECUTION_BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{sorted(EXECUTION_BACKENDS)}"
        ) from None
    return factory()


def __getattr__(name: str):
    # ``ShardedSecAggRound`` moved to :mod:`repro.simulation.hierarchy`
    # when orchestration became tree-shaped; resolve it lazily so the
    # historical ``from repro.simulation.sharding import
    # ShardedSecAggRound`` keeps working without a circular import at
    # module load.
    if name == "ShardedSecAggRound":
        from repro.simulation.hierarchy import ShardedSecAggRound

        return ShardedSecAggRound
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
