"""Sharded secure aggregation: k Bonawitz sub-rounds composed modularly.

A flat Bonawitz round costs ``O(n^2)`` in pairwise masks and Shamir
shares, which caps the cohort size a single round can afford.  This
module opens the next scaling axis the way production federations do
(DDP-SA, Wei et al.; the hybrid approach of Truex et al.): partition
the round's cohort into ``k`` shards, run one *independent*
dropout-tolerant :class:`~repro.simulation.rounds.AsyncSecAggRound` per
shard — each with its own Shamir threshold, phase deadlines, and
private :class:`~repro.simulation.clock.SimulatedClock` — and compose
the shard sums with an outer modular addition
(:func:`repro.secagg.compose.compose_shard_sums`), which is
bit-identical to the flat sum over the union of the shards' survivors.

Cost: ``k`` shards of ``n/k`` clients do ``O(n^2 / k)`` total protocol
work, and the shards are embarrassingly parallel.  The
:class:`ExecutionBackend` knob chooses how they run:

* ``"inline"`` (default) — sequentially in this process; zero overhead,
  ideal for tests and small cohorts.
* ``"process"`` — fanned out over a reusable
  :class:`concurrent.futures.ProcessPoolExecutor`, one OS process per
  worker, for multi-core hosts; shard vectors cross the process
  boundary through a reusable shared-memory block
  (:mod:`repro.simulation.shm`).
* ``"process-pickle"`` — the same pool with vectors shipped inside the
  task pickle (the vector-transport comparison baseline).

Both backends produce **bit-identical results**: every shard derives
its protocol randomness from a spawn-keyed
:class:`numpy.random.SeedSequence` — ``SeedSequence(entropy,
spawn_key=(shard_index,))`` with the entropy drawn once from the
round's RNG before dispatch — so no state crosses the process boundary
except the picklable :class:`ShardTask`.

Simulated time composes as a real parallel deployment's would: every
shard's private clock starts at the parent clock's ``now``, the round
completes when the *slowest* shard completes, and the parent clock is
advanced to that instant (:meth:`SimulatedClock.advance_to`).  Shard
traces are merged into the parent trace, each event annotated with its
shard index, in deterministic (time, shard) order.

Failure semantics are hierarchical: a shard whose survivor count falls
below its Shamir threshold aborts *alone* — its members count as
dropped for the round and the remaining shards' sums still compose.
Only if every shard aborts does the round raise
:class:`~repro.errors.AggregationError`, mirroring the flat driver.
"""

from __future__ import annotations

import abc
import contextlib
import dataclasses
import math
import os
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.compose import compose_shard_sums
from repro.secagg.wire import WireStats
from repro.simulation.clock import SimulatedClock
from repro.simulation.events import SimulationTrace, TraceEvent
from repro.simulation.population import ClientPlan
from repro.simulation.rounds import AsyncSecAggRound, RoundOutcome
from repro.simulation.shm import (
    SharedMemoryTransport,
    ShmVectorBlock,
    WorkerBlock,
    shared_memory_available,
)
from repro.telemetry.registry import MetricsRegistry, MetricsSnapshot
from repro.telemetry.spans import time_phase

#: A Bonawitz instance needs at least two parties (threshold >= 2), so a
#: shard below this size is never formed — the partition caps ``k``.
MIN_SHARD_SIZE = 2

#: Hard cap on pool width; shards beyond it queue on existing workers.
_MAX_POOL_WORKERS = 16


def shamir_threshold(threshold_fraction: float, cohort_size: int) -> int:
    """The Shamir reconstruction threshold for a cohort (or shard).

    ``max(2, ceil(threshold_fraction * cohort_size))`` — the single
    definition shared by the flat engine path, the per-shard sub-rounds,
    and the throughput benchmarks, so flat-vs-sharded comparisons always
    run under the same dropout-tolerance rule.
    """
    if not 0 < threshold_fraction <= 1:
        raise ConfigurationError(
            f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
        )
    return max(2, math.ceil(threshold_fraction * cohort_size))


def partition_cohort(
    cohort: Iterable[int], shards: int
) -> list[tuple[int, ...]]:
    """Deterministically partition a cohort into balanced shards.

    Round-robin over the sorted member list: shard ``i`` receives every
    ``k``-th member starting at offset ``i``, so shard sizes differ by
    at most one and the assignment depends only on the cohort and ``k``.
    The effective shard count is capped so every shard keeps at least
    :data:`MIN_SHARD_SIZE` members (a smaller cohort simply gets fewer
    shards, down to one).

    Args:
        cohort: Client indices (1-based, any order, no duplicates).
        shards: Requested shard count ``k >= 1``.

    Returns:
        Non-empty member tuples, sorted within and across shards.

    Raises:
        ConfigurationError: If ``shards < 1`` or the cohort is empty.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    members = sorted(cohort)
    if not members:
        raise ConfigurationError("cannot partition an empty cohort")
    if len(set(members)) != len(members):
        raise ConfigurationError("cohort contains duplicate client indices")
    effective = max(1, min(shards, len(members) // MIN_SHARD_SIZE))
    return [tuple(members[i::effective]) for i in range(effective)]


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """Everything one shard sub-round needs — picklable by design, so
    the process backend ships it to a worker unchanged.

    Attributes:
        shard_index: Position of this shard in the partition (also the
            spawn key selecting its RNG stream).
        vectors: The shard members' private input vectors.
        modulus: Aggregation modulus ``m``.
        threshold: This shard's Shamir reconstruction threshold.
        start_time: Parent clock ``now`` at round start; the shard's
            private clock starts here so timestamps share one epoch.
        entropy: Round-scoped seed material; the shard's RNG is
            ``default_rng(SeedSequence(entropy, spawn_key=(shard_index,)))``.
        plans: Behaviour plans for the shard's members.
        phase_timeout: Per-phase server deadline (simulated seconds).
        mask_prg: Mask PRG backend *name* (instances may not pickle).
        shm: When set, ``vectors`` is empty and the inputs (plus the
            result row) live in the shared-memory block this descriptor
            names — the :mod:`repro.simulation.shm` vector transport.
        collect_metrics: When true the worker meters its sub-round into
            a private registry and ships the (picklable) snapshot back
            on the report for the parent to absorb under a ``shard``
            label.
    """

    shard_index: int
    vectors: dict[int, np.ndarray]
    modulus: int
    threshold: int
    start_time: float
    entropy: int
    plans: dict[int, ClientPlan]
    phase_timeout: float
    mask_prg: str | None = None
    shm: "ShmVectorBlock | None" = None
    collect_metrics: bool = False


@dataclasses.dataclass(frozen=True)
class ShardReport:
    """One shard sub-round's complete result, back from any backend.

    Attributes:
        shard_index: Which shard this reports on.
        members: The shard's cohort slice.
        outcome: The sub-round outcome, or ``None`` if the shard
            aborted below its threshold.
        error: The abort reason when ``outcome`` is ``None``.
        ended_at: Shard-clock time the sub-round finished (success or
            abort) — the round completes at the max across shards.
        events: The shard's trace events (its private clock shares the
            parent's epoch, so times merge directly).
        pending_timers: Shard-clock leak counter at exit; zero when the
            timer-cancellation contract held.
        metrics: Snapshot of the shard's private metrics registry when
            the task asked for one (``collect_metrics``), else ``None``.
            Frozen tuples all the way down, so it pickles across the
            process boundary unchanged.
    """

    shard_index: int
    members: tuple[int, ...]
    outcome: RoundOutcome | None
    error: str | None
    ended_at: float
    events: tuple[TraceEvent, ...]
    pending_timers: int
    metrics: MetricsSnapshot | None = None


def run_shard(task: ShardTask) -> ShardReport:
    """Execute one shard's Bonawitz sub-round on a private clock.

    Module-level (not a method) so :class:`ProcessBackend` can pickle a
    bare reference to it; the inline backend calls it directly.

    When the task rode the shared-memory vector transport, the inputs
    are read out of the block here and the composed sum is written back
    into the task's result row (the returned outcome then carries an
    empty placeholder the parent restores) — identical int64 values
    either way, so results are bit-identical across transports.
    """
    vectors = task.vectors
    block: WorkerBlock | None = None
    if task.shm is not None:
        block = WorkerBlock(task.shm)
        vectors = block.read_vectors()
    clock = SimulatedClock(start=task.start_time)
    trace = SimulationTrace(clock)
    registry = MetricsRegistry() if task.collect_metrics else None
    rng = np.random.default_rng(
        np.random.SeedSequence(task.entropy, spawn_key=(task.shard_index,))
    )
    sub_round = AsyncSecAggRound(
        vectors=vectors,
        modulus=task.modulus,
        threshold=task.threshold,
        clock=clock,
        rng=rng,
        plans=task.plans,
        phase_timeout=task.phase_timeout,
        trace=trace,
        mask_prg=task.mask_prg,
        metrics=registry,
    )
    outcome: RoundOutcome | None = None
    error: str | None = None
    try:
        outcome = clock.run(sub_round.run())
    except AggregationError as aggregation_error:
        error = str(aggregation_error)
    if block is not None:
        if outcome is not None:
            block.write_result(outcome.modular_sum)
            outcome = dataclasses.replace(
                outcome, modular_sum=np.empty(0, dtype=np.int64)
            )
        block.close()
    return ShardReport(
        shard_index=task.shard_index,
        members=tuple(sorted(vectors)),
        outcome=outcome,
        error=error,
        ended_at=clock.now,
        events=tuple(trace.events),
        pending_timers=clock.pending_timers,
        metrics=registry.snapshot() if registry is not None else None,
    )


class ExecutionBackend(abc.ABC):
    """How a round's shard sub-rounds are executed.

    Backends are pure executors: they receive picklable
    :class:`ShardTask`\\ s, run :func:`run_shard` on each, and return
    the reports **in task order** — determinism never depends on
    completion order.
    """

    #: Wire/CLI name of the backend.
    name: str = "abstract"

    @abc.abstractmethod
    def run_shards(self, tasks: Sequence[ShardTask]) -> list[ShardReport]:
        """Execute every task; reports align with ``tasks`` by index."""

    def warm(self) -> None:
        """Eagerly acquire lazy resources (worker processes), so
        start-up cost lands here rather than in the first round —
        benchmarks call this before starting their timers."""

    def close(self) -> None:
        """Release held resources (worker processes); idempotent."""


class InlineBackend(ExecutionBackend):
    """Run shards sequentially in the calling process (the default)."""

    name = "inline"

    def run_shards(self, tasks: Sequence[ShardTask]) -> list[ShardReport]:
        return [run_shard(task) for task in tasks]


class ProcessBackend(ExecutionBackend):
    """Fan shards out over a reusable OS-process pool.

    The pool is created lazily on first use and reused across rounds
    (worker start-up would otherwise dominate small rounds); call
    :meth:`close` — or use the backend as a context manager — to reap
    the workers.

    Args:
        max_workers: Pool width; defaults to
            ``min(cpu_count, _MAX_POOL_WORKERS)`` but at least 2, so
            shards overlap even where the container under-reports cores.
        vector_transport: How shard input vectors (and result sums)
            cross the process boundary — ``"shm"`` (default) moves them
            through one :mod:`multiprocessing.shared_memory` block per
            round (:mod:`repro.simulation.shm`), ``"pickle"`` ships
            them inside the task pickle.  Results are bit-identical;
            shm skips the vector serialisation entirely.  Platforms
            without shared memory fall back to pickle transparently.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        vector_transport: str = "shm",
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if vector_transport not in ("shm", "pickle"):
            raise ConfigurationError(
                "vector_transport must be 'shm' or 'pickle', got "
                f"{vector_transport!r}"
            )
        self._max_workers = max_workers
        self._vector_transport = vector_transport
        if vector_transport == "pickle":
            self.name = "process-pickle"
        self._pool = None
        # One shared block reused across every round this backend runs;
        # built lazily, released with the pool.
        self._shm_transport: SharedMemoryTransport | None = None

    @property
    def effective_transport(self) -> str:
        """The vector transport actually in use on this platform —
        requested ``"shm"`` degrades to ``"pickle"`` where POSIX shared
        memory is unavailable."""
        if self._vector_transport == "shm" and shared_memory_available():
            return "shm"
        return "pickle"

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            workers = self._max_workers
            if workers is None:
                workers = min(
                    max(os.cpu_count() or 1, 2), _MAX_POOL_WORKERS
                )
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def run_shards(self, tasks: Sequence[ShardTask]) -> list[ShardReport]:
        # map() preserves task order regardless of completion order.
        pool = self._ensure_pool()
        if self._vector_transport == "shm" and shared_memory_available():
            if self._shm_transport is None:
                self._shm_transport = SharedMemoryTransport()
            transport = self._shm_transport
            try:
                packed = transport.pack(tasks)
                return transport.unpack(
                    list(pool.map(run_shard, packed))
                )
            except BaseException:
                # A worker crash (or mid-round cancellation) unwinds
                # through here with the block's contents suspect and
                # nobody left to unpack them: unlink the named segment
                # now instead of leaking it until interpreter exit.
                self._shm_transport = None
                transport.close()
                raise
        return list(pool.map(run_shard, tasks))

    def warm(self) -> None:
        self._ensure_pool()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shm_transport is not None:
            self._shm_transport.close()
            self._shm_transport = None

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _pickle_process_backend() -> ProcessBackend:
    """Registry factory for the pickle-transport process backend."""
    return ProcessBackend(vector_transport="pickle")


#: Backend registry, keyed by wire/CLI name.
EXECUTION_BACKENDS = {
    InlineBackend.name: InlineBackend,
    ProcessBackend.name: ProcessBackend,
    "process-pickle": _pickle_process_backend,
}

#: The backend used when none is requested.
DEFAULT_BACKEND = InlineBackend.name


def get_execution_backend(
    backend: ExecutionBackend | str | None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    Raises:
        ConfigurationError: For an unknown backend name.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = EXECUTION_BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{sorted(EXECUTION_BACKENDS)}"
        ) from None
    return factory()


class ShardedSecAggRound:
    """One cohort round as ``k`` parallel Bonawitz sub-rounds.

    Drop-in sibling of :class:`~repro.simulation.rounds.AsyncSecAggRound`
    producing the same :class:`~repro.simulation.rounds.RoundOutcome`,
    but synchronous from the caller's view: each shard runs to
    completion on its own private clock (possibly in another process),
    then the parent clock is advanced by the slowest shard's duration.

    Args:
        vectors: Private input per cohort member (1-based index ->
            length-``d`` integer vector over ``Z_m``).
        modulus: Aggregation modulus ``m``.
        clock: The parent simulated clock; advanced (never run) by
            :meth:`execute`.
        rng: Round-scoped randomness; a single 63-bit entropy draw
            seeds every shard's spawn-keyed stream.
        shards: Requested shard count (capped by the partition so each
            shard keeps >= :data:`MIN_SHARD_SIZE` members).
        threshold_fraction: Per-shard Shamir threshold as a fraction of
            the shard's size (``max(2, ceil(fraction * len(shard)))``).
        plans: Behaviour plan per cohort member.
        phase_timeout: Per-phase server deadline (simulated seconds).
        backend: ``"inline"``, ``"process"``, or an
            :class:`ExecutionBackend` instance.  A *name* builds a
            backend owned (and closed) by this round; an *instance*
            stays caller-owned for reuse across rounds and is never
            closed here.
        trace: Optional parent event log; shard traces are merged into
            it, each event annotated with its shard index.
        mask_prg: Mask PRG backend name shared by every shard.
        metrics: Optional :class:`~repro.telemetry.MetricsRegistry`.
            Each shard sub-round meters into a private registry (in the
            worker process, for the process backends) whose snapshot is
            absorbed back here under a ``shard="<index>"`` label; the
            parent additionally times backend dispatch and merge, and
            counts the vector bytes that crossed the worker boundary by
            transport (``shm`` vs ``pickle``).
    """

    def __init__(
        self,
        vectors: Mapping[int, np.ndarray],
        modulus: int,
        clock: SimulatedClock,
        rng: np.random.Generator,
        shards: int,
        threshold_fraction: float = 0.6,
        plans: Mapping[int, ClientPlan] | None = None,
        phase_timeout: float = 60.0,
        backend: ExecutionBackend | str | None = None,
        trace: SimulationTrace | None = None,
        mask_prg: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not vectors:
            raise ConfigurationError("cohort must not be empty")
        if not 0 < threshold_fraction <= 1:
            raise ConfigurationError(
                "threshold_fraction must be in (0, 1], got "
                f"{threshold_fraction}"
            )
        if len(vectors) < MIN_SHARD_SIZE:
            raise ConfigurationError(
                f"sharded aggregation needs a cohort of >= {MIN_SHARD_SIZE}, "
                f"got {len(vectors)}"
            )
        self._vectors = {
            u: np.asarray(vectors[u], dtype=np.int64) for u in sorted(vectors)
        }
        self._modulus = modulus
        self._clock = clock
        self._threshold_fraction = threshold_fraction
        self._plans = dict(plans or {})
        self._phase_timeout = phase_timeout
        # A backend built here from a name is owned here and closed
        # after each execute(); a passed-in instance stays caller-owned
        # (the engine reuses one pool across every round of a run).
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self._backend = get_execution_backend(backend)
        self._trace = trace
        self._mask_prg = mask_prg
        self._partition = partition_cohort(self._vectors, shards)
        # One entropy draw *before* dispatch keeps the per-shard streams
        # identical under every backend (and costs the round RNG exactly
        # one draw regardless of k).
        self._entropy = int(rng.integers(0, 2**63))
        self.last_reports: tuple[ShardReport, ...] = ()
        self._metrics = metrics
        if metrics is not None:
            self._m_dispatch = metrics.histogram(
                "secagg_shard_dispatch_seconds",
                "Wall seconds the backend spent running a round's "
                "shards, by backend.",
            )
            self._m_merge = metrics.histogram(
                "secagg_shard_merge_seconds",
                "Wall seconds spent absorbing shard reports (metrics "
                "and traces) back into the parent round.",
            )
            self._m_transfer = metrics.counter(
                "secagg_shard_transfer_bytes_total",
                "Vector payload bytes that crossed the worker "
                "boundary, by transport.",
            )
        else:
            self._m_dispatch = self._m_merge = self._m_transfer = None

    @property
    def num_shards(self) -> int:
        """Effective shard count after the partition's size cap."""
        return len(self._partition)

    def _shard_threshold(self, members: tuple[int, ...]) -> int:
        return shamir_threshold(self._threshold_fraction, len(members))

    def _build_tasks(self, started_at: float) -> list[ShardTask]:
        return [
            ShardTask(
                shard_index=index,
                vectors={u: self._vectors[u] for u in members},
                modulus=self._modulus,
                threshold=self._shard_threshold(members),
                start_time=started_at,
                entropy=self._entropy,
                plans={
                    u: self._plans[u] for u in members if u in self._plans
                },
                phase_timeout=self._phase_timeout,
                mask_prg=self._mask_prg,
                collect_metrics=self._metrics is not None,
            )
            for index, members in enumerate(self._partition)
        ]

    def _transport_label(self) -> str | None:
        """How shard vectors cross the worker boundary, or ``None``
        when they never leave this process (inline backend)."""
        if isinstance(self._backend, ProcessBackend):
            return self._backend.effective_transport
        return None

    def _wall_span(self, name: str, instrument, **labels):
        """A wall-clock-only span, or a no-op without metrics."""
        if instrument is None:
            return contextlib.nullcontext()
        if labels:
            instrument = instrument.labels(**labels)
        return time_phase(name, wall_histogram=instrument)

    def _merge_traces(self, reports: Sequence[ShardReport]) -> None:
        if self._trace is None:
            return
        annotated = [
            dataclasses.replace(
                event, details={**event.details, "shard": report.shard_index}
            )
            for report in reports
            for event in report.events
        ]
        # Stable sort: global time order, shard order breaking ties —
        # deterministic under both backends.
        annotated.sort(key=lambda event: event.time)
        self._trace.merge(annotated)

    def execute(self) -> RoundOutcome:
        """Run every shard sub-round and compose the outcome.

        Returns:
            A :class:`~repro.simulation.rounds.RoundOutcome` whose
            ``modular_sum`` is the outer modular composition of the
            surviving shards' sums, ``included`` the union of their
            survivor sets, and ``completed_at`` the slowest shard's
            finish time (to which the parent clock is advanced).

        Raises:
            AggregationError: Only if *every* shard aborted below its
                threshold.
        """
        started_at = self._clock.now
        tasks = self._build_tasks(started_at)
        try:
            with self._wall_span(
                "shard-dispatch", self._m_dispatch,
                backend=self._backend.name,
            ):
                reports = self._backend.run_shards(tasks)
        finally:
            if self._owns_backend:
                self._backend.close()
        self.last_reports = tuple(reports)
        if self._metrics is not None:
            transport = self._transport_label()
            if transport is not None:
                moved = sum(
                    vector.nbytes
                    for task in tasks
                    for vector in task.vectors.values()
                )
                moved += sum(
                    report.outcome.modular_sum.nbytes
                    for report in reports
                    if report.outcome is not None
                )
                self._m_transfer.labels(transport=transport).inc(moved)
        with self._wall_span("shard-merge", self._m_merge):
            if self._metrics is not None:
                for report in reports:
                    if report.metrics is not None:
                        self._metrics.absorb(
                            report.metrics.with_labels(
                                shard=str(report.shard_index)
                            )
                        )
            self._merge_traces(reports)
        completed_at = max(report.ended_at for report in reports)
        self._clock.advance_to(completed_at)
        succeeded = [report for report in reports if report.outcome is not None]
        if self._trace is not None:
            for report in reports:
                if report.outcome is None:
                    self._trace.record(
                        "shard-aborted",
                        shard=report.shard_index,
                        members=len(report.members),
                        error=report.error,
                    )
        if not succeeded:
            reasons = "; ".join(
                f"shard {report.shard_index}: {report.error}"
                for report in reports
            )
            raise AggregationError(
                f"all {len(reports)} shards aborted — {reasons}"
            )
        modular_sum = compose_shard_sums(
            [report.outcome.modular_sum for report in succeeded],
            self._modulus,
        )
        included = frozenset().union(
            *(report.outcome.included for report in succeeded)
        )
        wire = WireStats().merge(
            report.outcome.wire
            for report in succeeded
            if report.outcome.wire is not None
        )
        if self._trace is not None:
            self._trace.record(
                "sharded-round-complete",
                shards=len(reports),
                aborted_shards=len(reports) - len(succeeded),
                backend=self._backend.name,
                included=len(included),
                dropped=len(self._vectors) - len(included),
            )
        return RoundOutcome(
            modular_sum=modular_sum,
            included=included,
            dropped=frozenset(self._vectors) - included,
            started_at=started_at,
            completed_at=completed_at,
            wire=wire,
        )
