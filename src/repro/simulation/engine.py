"""The simulation engine: full DP-FL training over an unreliable population.

:class:`SimulationEngine` is the top-level orchestrator this package
exists for.  Each training round it

1. Poisson-samples a cohort from the :class:`~repro.simulation.population.Population`
   (the sampling the privacy accountant's amplification lemma assumes),
2. computes each cohort member's per-record gradient and encodes it with
   the paper's Algorithm-4 pipeline (:class:`~repro.core.client.GradientEncoder`
   with the calibrated Skellam mixture noise sampler),
3. drives the encoded vectors through a dropout-tolerant asynchronous
   Bonawitz round (:class:`~repro.simulation.rounds.AsyncSecAggRound`)
   on the deterministic simulated clock — crashes and stragglers
   shrink the cohort, Shamir reconstruction cleans up after them,
4. decodes the surviving cohort's aggregate with Algorithm 6
   (:class:`~repro.core.server.GradientDecoder`) and applies the server
   optimiser step via the :class:`~repro.fl.training.FederatedTrainer`
   round loop, and
5. charges one round of Poisson-subsampled composition to a running
   :class:`~repro.accounting.rdp.RdpAccountant` ledger, so the run
   reports its cumulative ``(epsilon, delta)`` alongside accuracy.

Ledger policy — honest about dropout: each contributor adds one noise
share, so a round that lost clients mid-protocol carries less total
noise than calibration assumed and truly costs *more* epsilon.  The
ledger charges such rounds at an effective contributor count scaled
down by the survivor fraction (``floor(expected * |included|/|cohort|)``)
instead of pretending the cohort was whole.  Poisson fluctuation of the
cohort size itself is *not* penalized — that randomness belongs to the
amplification lemma, and following the paper's convention it is
accounted at the expected batch size.  Rounds skipped for an empty
cohort or aborted below the SecAgg threshold released nothing and are
charged at the calibrated expectation.  Consequently the cumulative
epsilon equals the calibrated budget after ``T`` dropout-free rounds
and visibly exceeds it under dropout, per round, in the
:class:`RoundRecord` stream.

Determinism: all randomness flows from ``config.seed`` through the
population's spawn-keyed streams, and all concurrency runs on the
simulated clock, so a run is bit-reproducible — asserted via
:attr:`SimulationResult.parameters_digest`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math

import numpy as np

from repro.accounting.rdp import RdpAccountant
from repro.config import CompressionConfig, PrivacyBudget
from repro.core.calibration import _memoised
from repro.core.client import GradientEncoder, skellam_encoder
from repro.core.server import GradientDecoder
from repro.errors import (
    AggregationError,
    ChaosKillError,
    ConfigurationError,
    PrivacyAccountingError,
)
from repro.fl.data import Dataset, fashion_mnist_surrogate, mnist_surrogate
from repro.fl.model import MLPClassifier
from repro.fl.training import FederatedTrainer, TrainingConfig, TrainingHistory
from repro.linalg.hadamard import RandomRotation
from repro.mechanisms.smm import SkellamMixtureMechanism
from repro.simulation.clock import SimulatedClock
from repro.simulation.events import SimulationTrace
from repro.resilience.chaos import (
    Blackout,
    ChaosSchedule,
    Fault,
    Partition,
    ServerKill,
    parse_chaos,
)
from repro.simulation.population import (
    PURPOSE_ENCODING,
    PURPOSE_PROTOCOL,
    AvailabilityModel,
    ClientPlan,
    Population,
)
from repro.secagg.compose import COMPOSERS
from repro.secagg.tree import TreeTopology
from repro.simulation.hierarchy import HierarchicalSecAggRound
from repro.simulation.rounds import AsyncSecAggRound
from repro.simulation.sharding import (
    EXECUTION_BACKENDS,
    get_execution_backend,
    shamir_threshold,
    validate_threshold_fraction,
)
from repro.telemetry import (
    COHORT_SIZE_BUCKETS,
    MetricsRegistry,
    MetricsReport,
)

#: Run-scoped spawn-key purposes (distinct namespace from the per-round
#: purposes in :mod:`repro.simulation.population` by key length).
_SETUP_DATA = 10
_SETUP_MODEL = 11
_SETUP_ROTATION = 12
_SETUP_TRAINING = 13

_DATASETS = {"mnist": mnist_surrogate, "fashion": fashion_mnist_surrogate}


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulated training run.

    Attributes:
        population_size: Registered clients (one record each).
        expected_cohort: Expected Poisson cohort size per round ``|B|``.
        rounds: Training rounds ``T``.
        modulus: SecAgg modulus ``m``.
        gamma: Algorithm-4 scale parameter.
        epsilon: Target DP epsilon for the whole run; ``None`` trains
            non-privately (and without SecAgg).
        delta: Target DP delta.
        threshold_fraction: Shamir threshold as a fraction of the
            sampled cohort (0.6 tolerates up to 40% dropout).
        phase_timeout: Server-side phase deadline (simulated seconds).
        hidden: Hidden width of the surrogate-MNIST classifier.
        test_records: Held-out evaluation records.
        learning_rate: Server optimiser step size.
        optimizer: ``"adam"`` or ``"sgd"``.
        lr_schedule: Server learning-rate schedule name.
        eval_every: Evaluate accuracy every this many rounds (0 = only
            at the end).
        dataset: ``"mnist"`` or ``"fashion"`` surrogate.
        seed: Root seed; equal seeds give bit-identical runs.
        verify_aggregate: Record, per round, whether the SecAgg output
            exactly equals the survivors' direct modular sum (a
            simulation-side correctness oracle, not something a real
            server could compute).
        shards: Number of SecAgg shards per round; ``1`` (default) runs
            the flat single-instance protocol, ``k > 1`` partitions
            each cohort into ``k`` hierarchical Bonawitz sub-rounds
            whose sums compose modularly (bit-identical to the flat sum
            over the same survivors, ``O(n^2/k)`` total protocol work).
        tree: Aggregation-tree topology string (e.g. ``"8"`` or
            ``"4x4"``, root level first); overrides ``shards`` with an
            N-level region→…→global tree.  ``None`` (default) keeps the
            flat/``shards`` behaviour.
        compose: How interior tree nodes combine child sums —
            ``"clear"`` (default, legacy outer modular addition; the
            composing node sees every intermediate sum) or ``"secagg"``
            (an outer Bonawitz round over virtual clients; every
            intermediate sum stays masked).  Sums are bit-identical
            either way.
        rebalance: Enable cross-shard straggler rebalancing: a shard
            driven below its Shamir threshold before the masking phase
            commits re-homes its survivors onto sibling shards instead
            of dropping them.  Off by default (re-homing changes which
            members contribute, so pinned digests cover the default).
        backend: How shard sub-rounds execute — ``"inline"``
            (sequential, default), ``"process"`` (a reusable OS process
            pool with the shared-memory vector transport), or
            ``"process-pickle"`` (the same pool shipping vectors inside
            the task pickle); results are bit-identical in all cases.
        telemetry: Meter the run into a
            :class:`~repro.telemetry.MetricsRegistry` (phase latencies,
            round/dropout/wire counters, cumulative-epsilon gauge) and
            attach the end-of-run :class:`~repro.telemetry.MetricsReport`
            to the result.  Instrumentation never touches the RNG, so
            runs are bit-identical either way; ``False`` removes even
            the bookkeeping cost.
        trace_max_events: Ring-buffer cap on the run's
            :class:`~repro.simulation.events.SimulationTrace` (oldest
            events beyond the cap are dropped and counted); ``None``
            (default) retains every event.
        chaos: Declarative fault schedule
            (:func:`~repro.resilience.chaos.parse_chaos` syntax, e.g.
            ``"kill@masked-input:r2;blackout:3@share-keys"``) injected
            into the simulated rounds: blackouts become permanent
            drop-outs for the last ``K`` cohort members, partitions
            become per-phase latency bumps, and a kill crashes the
            simulated server at the phase — restarted (``kill@``) the
            round is retried once and recorded ``recovered``; without
            restart (``abort@``) the round aborts cleanly.  Kills
            require the flat topology (no ``shards``/``tree``).
            ``None`` (default) injects nothing.
    """

    population_size: int = 32
    expected_cohort: int = 16
    rounds: int = 5
    modulus: int = 2**16
    gamma: float = 64.0
    epsilon: float | None = 5.0
    delta: float = 1e-5
    threshold_fraction: float = 0.6
    phase_timeout: float = 60.0
    hidden: int = 8
    test_records: int = 128
    learning_rate: float = 0.01
    optimizer: str = "adam"
    lr_schedule: str = "constant"
    eval_every: int = 0
    dataset: str = "mnist"
    seed: int = 0
    verify_aggregate: bool = False
    shards: int = 1
    backend: str = "inline"
    tree: str | None = None
    compose: str = "clear"
    rebalance: bool = False
    telemetry: bool = True
    trace_max_events: int | None = None
    chaos: str | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.tree is not None:
            TreeTopology.parse(self.tree)  # Raises on a malformed shape.
        if self.compose not in COMPOSERS:
            raise ConfigurationError(
                f"compose must be one of {sorted(COMPOSERS)}, "
                f"got {self.compose!r}"
            )
        if self.trace_max_events is not None and self.trace_max_events < 1:
            raise ConfigurationError(
                "trace_max_events must be >= 1 or None, got "
                f"{self.trace_max_events}"
            )
        if self.backend not in EXECUTION_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {sorted(EXECUTION_BACKENDS)}, "
                f"got {self.backend!r}"
            )
        if self.expected_cohort > self.population_size:
            raise ConfigurationError(
                f"expected_cohort {self.expected_cohort} exceeds the "
                f"population of {self.population_size}"
            )
        validate_threshold_fraction(self.threshold_fraction)
        if self.chaos is not None:
            schedule = parse_chaos(self.chaos)  # Raises on malformed.
            if self.epsilon is None:
                raise ConfigurationError(
                    "chaos faults target the SecAgg round and are "
                    "silently inert on the non-private baseline; drop "
                    "--no-privacy or drop --chaos"
                )
            has_kill = any(
                isinstance(fault, ServerKill) for fault in schedule.faults
            )
            if has_kill and self.aggregation_topology() is not None:
                raise ConfigurationError(
                    "kill/abort chaos faults require the flat topology "
                    "(no shards/tree): hierarchical rounds have no "
                    "single server to crash"
                )
        if self.dataset not in _DATASETS:
            raise ConfigurationError(
                f"dataset must be one of {sorted(_DATASETS)}, "
                f"got {self.dataset!r}"
            )

    def aggregation_topology(self) -> TreeTopology | None:
        """The aggregation tree this run uses, or ``None`` for flat.

        ``tree`` wins over ``shards``; ``shards == 1`` with no tree is
        the flat single-instance protocol.
        """
        if self.tree is not None:
            return TreeTopology.parse(self.tree)
        if self.shards > 1:
            return TreeTopology((self.shards,))
        return None


@dataclasses.dataclass(frozen=True)
class RoundRecord:
    """What happened in one scheduled round.

    Attributes:
        index: 1-based round number.
        cohort: Sampled client indices (possibly empty).
        included: Clients whose input made the aggregate.
        dropped: Cohort members lost to crashes/stragglers.
        epsilon: Cumulative ledger epsilon *after* this round.
        aborted: True if aggregation fell below the SecAgg threshold
            (no model update happened).
        aggregate_matches: Exact-match oracle result (``None`` unless
            ``config.verify_aggregate``).
        started_at: Simulated start time.
        completed_at: Simulated completion time.
        wire_messages: Protocol messages moved this round (both
            directions, all phases; 0 when no SecAgg traffic happened).
        wire_bytes: Serialized wire bytes moved this round.
        composer: How intermediate sums were combined (``"clear"`` /
            ``"secagg"``) for hierarchical rounds; ``None`` for flat
            rounds, which have no intermediate sums.
        recovered: True when a chaos server-kill fired this round and
            the restarted server recovered it (the recorded outcome is
            the retry's).
    """

    index: int
    cohort: tuple[int, ...]
    included: frozenset[int]
    dropped: frozenset[int]
    epsilon: float
    aborted: bool = False
    aggregate_matches: bool | None = None
    started_at: float = 0.0
    completed_at: float = 0.0
    wire_messages: int = 0
    wire_bytes: int = 0
    composer: str | None = None
    recovered: bool = False


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of a full simulated training run.

    Attributes:
        records: One entry per scheduled round.
        history: The trainer's accuracy/loss history.
        epsilon: Final cumulative epsilon (``nan`` for non-private).
        delta: The delta the ledger converted at.
        mechanism_summary: Calibration description of the mechanism.
        sim_duration: Total simulated seconds of SecAgg traffic.
        parameters_digest: SHA-256 of the final model parameters —
            equal digests prove bit-identical runs.
        metrics: End-of-run :class:`~repro.telemetry.MetricsReport`
            (exportable to Prometheus text or JSON lines), or ``None``
            when the run disabled telemetry.
    """

    records: tuple[RoundRecord, ...]
    history: TrainingHistory
    epsilon: float
    delta: float
    mechanism_summary: dict
    sim_duration: float
    parameters_digest: str
    metrics: MetricsReport | None = None

    @property
    def final_accuracy(self) -> float:
        """Test accuracy of the final model."""
        return self.history.final_accuracy


def _apply_chaos_plans(
    plans: dict[int, ClientPlan],
    cohort: tuple[int, ...],
    faults: tuple[Fault, ...],
) -> dict[int, ClientPlan]:
    """Fold a round's chaos faults into its availability plans.

    Blackouts turn the last ``K`` cohort members permanently dark at the
    fault's phase (never *reviving* a client that would have dropped
    earlier anyway); partitions add the partition duration to those
    members' latency at the phase — a healed partition shows up as a
    straggle, and one longer than the phase deadline as an eviction.
    Server kills are not plan-level faults and are handled by the round
    driver.
    """
    ordered = list(cohort)
    patched = dict(plans)
    for fault in faults:
        if isinstance(fault, Blackout) and fault.clients > 0:
            for client in ordered[-fault.clients:]:
                plan = patched.get(client, ClientPlan())
                drop = (
                    fault.phase
                    if plan.drop_phase is None
                    else min(plan.drop_phase, fault.phase)
                )
                patched[client] = dataclasses.replace(
                    plan, drop_phase=drop
                )
        elif isinstance(fault, Partition) and fault.clients > 0:
            for client in ordered[-fault.clients:]:
                plan = patched.get(client, ClientPlan())
                latencies = list(plan.latencies)
                latencies[fault.phase] += fault.duration
                patched[client] = dataclasses.replace(
                    plan, latencies=tuple(latencies)
                )
    return patched


class _AsyncRoundTrainer(FederatedTrainer):
    """FederatedTrainer whose rounds run through the simulation engine."""

    def __init__(self, engine: "SimulationEngine", *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._engine = engine
        self._current_cohort: tuple[int, ...] = ()

    def _select_round_participants(
        self, rng: np.random.Generator, round_index: int
    ) -> np.ndarray:
        cohort = self._engine.population.sample_cohort(
            round_index, self.config.expected_batch
        )
        self._current_cohort = cohort
        if not cohort:
            self._engine._record_skipped_round(round_index)
            return np.empty(0, dtype=np.int64)
        return np.asarray([u - 1 for u in cohort], dtype=np.int64)

    def _aggregate_gradients(
        self, batch: Dataset, rng: np.random.Generator, round_index: int
    ) -> np.ndarray | None:
        return self._engine._aggregate_round(
            batch, round_index, self._current_cohort
        )


class SimulationEngine:
    """Orchestrates DP federated training over a simulated population.

    Args:
        config: Run parameters.
        availability: Client behaviour model (dropout/stragglers/churn);
            defaults to everyone always online.
        train: Override the training dataset (defaults to the surrogate
            named by ``config.dataset``, one record per client).
        test: Override the evaluation dataset.
    """

    def __init__(
        self,
        config: SimulationConfig,
        availability: AvailabilityModel | None = None,
        train: Dataset | None = None,
        test: Dataset | None = None,
    ) -> None:
        self.config = config
        self.population = Population(
            config.population_size, availability, seed=config.seed
        )
        if train is None or test is None:
            maker = _DATASETS[config.dataset]
            made_train, made_test = maker(
                self.population.setup_rng(_SETUP_DATA),
                config.population_size,
                config.test_records,
            )
            train = train if train is not None else made_train
            test = test if test is not None else made_test
        if train.num_records != config.population_size:
            raise ConfigurationError(
                f"training set has {train.num_records} records for a "
                f"population of {config.population_size} (one record per "
                "client)"
            )
        self.compression = CompressionConfig(
            modulus=config.modulus, gamma=config.gamma
        )
        self.mechanism = (
            SkellamMixtureMechanism(self.compression)
            if config.epsilon is not None
            else None
        )
        # Tiny populations can miss a class entirely; size the softmax
        # head over both splits so evaluation never indexes past it.
        num_classes = max(train.num_classes, test.num_classes)
        self.model = MLPClassifier(
            [train.num_features, config.hidden, num_classes],
            self.population.setup_rng(_SETUP_MODEL),
        )
        budget = (
            PrivacyBudget(epsilon=config.epsilon, delta=config.delta)
            if config.epsilon is not None
            else None
        )
        self._trainer = _AsyncRoundTrainer(
            self,
            self.model,
            self.mechanism,
            train,
            test,
            TrainingConfig(
                rounds=config.rounds,
                expected_batch=config.expected_cohort,
                budget=budget,
                learning_rate=config.learning_rate,
                optimizer=config.optimizer,
                eval_every=config.eval_every,
                lr_schedule=config.lr_schedule,
            ),
        )
        self.encoder: GradientEncoder | None = None
        self.decoder: GradientDecoder | None = None
        self.trace: SimulationTrace | None = None
        self._clock: SimulatedClock | None = None
        self._ledger: RdpAccountant | None = None
        self._curves: dict[int, object] = {}  # survivor count -> RDP curve
        self._records: list[RoundRecord] = []
        self._backend = None  # ExecutionBackend, built per run()
        self._chaos: ChaosSchedule | None = (
            parse_chaos(config.chaos) if config.chaos is not None else None
        )
        self._metrics: MetricsRegistry | None = None
        self._m_sim_rounds = self._m_cohort = None
        self._m_epsilon = self._m_fallbacks = None
        self._m_recovery = None

    @property
    def sampling_rate(self) -> float:
        """Poisson rate ``q`` each client is sampled with per round."""
        return min(1.0, self.config.expected_cohort / self.config.population_size)

    def run(self) -> SimulationResult:
        """Execute the full training run; returns the collected result."""
        self._records = []
        self._clock = SimulatedClock()
        self.trace = SimulationTrace(
            self._clock, max_events=self.config.trace_max_events
        )
        self.encoder = self.decoder = self._ledger = None
        self._curves = {}
        if self.config.telemetry:
            self._metrics = MetricsRegistry()
            self._m_sim_rounds = self._metrics.counter(
                "sim_rounds_total",
                "Scheduled training rounds, by status.",
            )
            self._m_cohort = self._metrics.histogram(
                "sim_cohort_size",
                "Poisson-sampled cohort size per scheduled round.",
                buckets=COHORT_SIZE_BUCKETS,
            )
            self._m_epsilon = self._metrics.gauge(
                "sim_cumulative_epsilon",
                "Cumulative privacy ledger epsilon after the latest "
                "charged round.",
            )
            self._m_fallbacks = self._metrics.counter(
                "sim_ledger_fallbacks_total",
                "Rounds charged at the calibrated expectation because "
                "the realized survivor count was infeasible.",
            )
            self._m_recovery = self._metrics.counter(
                "round_recovery_total",
                "Chaos server-kill rounds, by recovery outcome.",
            )
        else:
            self._metrics = None
            self._m_sim_rounds = self._m_cohort = None
            self._m_epsilon = self._m_fallbacks = None
            self._m_recovery = None
        # Only sharded/tree runs execute through a backend; flat runs
        # drive AsyncSecAggRound on the engine clock directly.
        self._backend = (
            get_execution_backend(self.config.backend)
            if self.config.aggregation_topology() is not None
            else None
        )
        # trainer.run() calibrates the mechanism before its first round;
        # the wire pipeline is then built lazily on the first round hook.
        try:
            history = self._trainer.run(
                self.population.setup_rng(_SETUP_TRAINING)
            )
        finally:
            # The engine owns the backend it built (worker processes for
            # "process"); reap it even when a round raised.
            if self._backend is not None:
                self._backend.close()
                self._backend = None
        digest = hashlib.sha256(
            np.ascontiguousarray(self.model.get_flat_parameters()).tobytes()
        ).hexdigest()
        report: MetricsReport | None = None
        if self._metrics is not None:
            self._metrics.gauge(
                "sim_clock_seconds",
                "Simulated seconds the full run spanned.",
            ).set(self._clock.now)
            self._metrics.gauge(
                "sim_trace_dropped_events",
                "Trace events evicted by the ring-buffer cap.",
            ).set(float(self.trace.dropped_events))
            report = MetricsReport(snapshot=self._metrics.snapshot())
        return SimulationResult(
            records=tuple(self._records),
            history=history,
            epsilon=self._current_epsilon(),
            delta=self.config.delta,
            mechanism_summary=(
                self.mechanism.describe() if self.mechanism else {}
            ),
            sim_duration=self._clock.now,
            parameters_digest=digest,
            metrics=report,
        )

    def _ensure_wired(self) -> None:
        """Build the shared wire pipeline once the mechanism is calibrated.

        Called lazily from the first round hook, after
        ``FederatedTrainer.run`` has performed its (single) calibration.
        """
        if self.mechanism is None or self.encoder is not None:
            return
        rotation = RandomRotation.create(
            self.model.num_parameters, self.population.setup_rng(_SETUP_ROTATION)
        )
        assert self.mechanism.lam is not None  # Set by calibration.
        self.encoder = skellam_encoder(
            rotation=rotation,
            compression=self.compression,
            clip=self.mechanism.clip,
            lam=self.mechanism.lam,
        )
        self.decoder = GradientDecoder(
            rotation=rotation,
            compression=self.compression,
            warn_on_saturation=False,
        )
        self._ledger = RdpAccountant(
            orders=self._trainer.config.budget.orders
        )

    def _round_curve(self, contributors: int):
        """The (memoised) one-round RDP curve at a survivor count."""
        if contributors not in self._curves:
            self._curves[contributors] = _memoised(
                self.mechanism.per_round_rdp_curve(contributors)
            )
        return self._curves[contributors]

    def _charge_round(self, contributors: int) -> float:
        """Charge one round at the realized survivor count.

        Falls back to the calibrated expectation if the reduced noise
        level is infeasible at every Renyi order the ledger still
        tracks (an extreme-dropout corner; the fallback under-charges
        and is surfaced in the trace).
        """
        if self._ledger is None:
            return float("nan")
        try:
            self._ledger.step_subsampled(
                self._round_curve(contributors), self.sampling_rate
            )
        except PrivacyAccountingError:
            self.trace.record(
                "ledger-fallback", contributors=contributors
            )
            if self._m_fallbacks is not None:
                self._m_fallbacks.inc()
            self._ledger.step_subsampled(
                self._round_curve(self.config.expected_cohort),
                self.sampling_rate,
            )
        epsilon = self._current_epsilon()
        if self._m_epsilon is not None and not math.isnan(epsilon):
            self._m_epsilon.set(epsilon)
        return epsilon

    def _current_epsilon(self) -> float:
        if self._ledger is None:
            return float("nan")
        return self._ledger.epsilon(self.config.delta)

    def _count_sim_round(self, status: str, cohort_size: int) -> None:
        if self._m_sim_rounds is not None:
            self._m_sim_rounds.labels(status=status).inc()
            self._m_cohort.observe(float(cohort_size))

    def _record_skipped_round(self, round_index: int) -> None:
        """An empty Poisson sample still counts as a scheduled round."""
        self._ensure_wired()
        self._count_sim_round("skipped", 0)
        epsilon = self._charge_round(self.config.expected_cohort)
        now = self._clock.now if self._clock is not None else 0.0
        self._records.append(
            RoundRecord(
                index=round_index,
                cohort=(),
                included=frozenset(),
                dropped=frozenset(),
                epsilon=epsilon,
                started_at=now,
                completed_at=now,
            )
        )

    def _aggregate_round(
        self, batch: Dataset, round_index: int, cohort: tuple[int, ...]
    ) -> np.ndarray | None:
        per_example = self.model.per_example_gradients(
            batch.features, batch.labels
        )
        if self.mechanism is None:
            return self._plain_round(per_example, round_index, cohort)
        self._ensure_wired()
        assert self.encoder is not None and self.decoder is not None
        started_at = self._clock.now
        if len(cohort) < 2:
            # Bonawitz needs at least two parties; treat as an abort.
            return self._abort_round(round_index, cohort, started_at)
        vectors = {
            client: self.encoder.encode(
                per_example[position],
                self.population.client_rng(
                    round_index, client, PURPOSE_ENCODING
                ),
            )
            for position, client in enumerate(cohort)
        }
        protocol_rng = self.population.round_rng(round_index, PURPOSE_PROTOCOL)
        plans = self.population.plans(round_index, cohort)
        faults = (
            self._chaos.for_round(round_index) if self._chaos else ()
        )
        kill = self._chaos.kill(round_index) if self._chaos else None
        if faults:
            plans = _apply_chaos_plans(plans, cohort, faults)
        recovered = False
        topology = self.config.aggregation_topology()
        try:
            if topology is not None:
                tree_round = HierarchicalSecAggRound(
                    vectors=vectors,
                    modulus=self.config.modulus,
                    clock=self._clock,
                    rng=protocol_rng,
                    topology=topology,
                    threshold_fraction=self.config.threshold_fraction,
                    composer=self.config.compose,
                    plans=plans,
                    phase_timeout=self.config.phase_timeout,
                    backend=self._backend,
                    trace=self.trace,
                    metrics=self._metrics,
                    rebalance=self.config.rebalance,
                )
                outcome = tree_round.execute()
            else:
                threshold = shamir_threshold(
                    self.config.threshold_fraction, len(cohort)
                )

                def flat_round(fail_at: int | None) -> AsyncSecAggRound:
                    return AsyncSecAggRound(
                        vectors=vectors,
                        modulus=self.config.modulus,
                        threshold=threshold,
                        clock=self._clock,
                        rng=protocol_rng,
                        plans=plans,
                        phase_timeout=self.config.phase_timeout,
                        trace=self.trace,
                        metrics=self._metrics,
                        fail_at_phase=fail_at,
                    )

                try:
                    outcome = self._clock.run(
                        flat_round(kill.phase if kill else None).run()
                    )
                except ChaosKillError:
                    if kill is None or not kill.restart:
                        if self._m_recovery is not None:
                            self._m_recovery.labels(outcome="aborted").inc()
                        raise
                    # Restart: re-drive the round with a fresh server.
                    # The aggregate depends only on the included set and
                    # the clients' vectors — masks cancel — so the retry
                    # (whose protocol generators continue from the same
                    # round-scoped stream) releases the same sum the
                    # fault-free round would have.
                    self.trace.record(
                        "chaos-server-restart", round=round_index
                    )
                    if self._m_recovery is not None:
                        self._m_recovery.labels(outcome="resumed").inc()
                    recovered = True
                    outcome = self._clock.run(flat_round(None).run())
        except AggregationError:
            return self._abort_round(round_index, cohort, started_at)
        matches: bool | None = None
        if self.config.verify_aggregate:
            reference = np.zeros_like(outcome.modular_sum)
            for client in outcome.included:
                reference = np.mod(
                    reference + vectors[client], self.config.modulus
                )
            matches = bool(np.array_equal(reference, outcome.modular_sum))
        self._count_sim_round("completed", len(cohort))
        # Charge dropout (lost noise shares) honestly while keeping the
        # paper's expected-batch convention for Poisson size fluctuation.
        survivor_fraction = len(outcome.included) / len(cohort)
        contributors = max(
            1, math.floor(self.config.expected_cohort * survivor_fraction)
        )
        epsilon = self._charge_round(contributors)
        self._records.append(
            RoundRecord(
                index=round_index,
                cohort=cohort,
                included=outcome.included,
                dropped=outcome.dropped,
                epsilon=epsilon,
                aggregate_matches=matches,
                started_at=outcome.started_at,
                completed_at=outcome.completed_at,
                wire_messages=(
                    outcome.wire.total_messages if outcome.wire else 0
                ),
                wire_bytes=outcome.wire.total_bytes if outcome.wire else 0,
                composer=outcome.composer,
                recovered=recovered,
            )
        )
        decoded = self.decoder.decode(outcome.modular_sum)
        return decoded / self.config.expected_cohort

    def _plain_round(
        self,
        per_example: np.ndarray,
        round_index: int,
        cohort: tuple[int, ...],
    ) -> np.ndarray:
        """Non-private baseline: direct sum, no SecAgg, no ledger."""
        self._count_sim_round("completed", len(cohort))
        self._records.append(
            RoundRecord(
                index=round_index,
                cohort=cohort,
                included=frozenset(cohort),
                dropped=frozenset(),
                epsilon=float("nan"),
                started_at=self._clock.now,
                completed_at=self._clock.now,
            )
        )
        return per_example.sum(axis=0) / self.config.expected_cohort

    def _abort_round(
        self, round_index: int, cohort: tuple[int, ...], started_at: float
    ) -> None:
        """Below-threshold round: no release, conservative ledger charge."""
        self._count_sim_round("aborted", len(cohort))
        epsilon = self._charge_round(self.config.expected_cohort)
        self.trace.record("round-aborted", round=round_index)
        self._records.append(
            RoundRecord(
                index=round_index,
                cohort=cohort,
                included=frozenset(),
                dropped=frozenset(cohort),
                epsilon=epsilon,
                aborted=True,
                started_at=started_at,
                completed_at=self._clock.now,
            )
        )
        return None
