"""Reproduction of the Skellam Mixture Mechanism (Bao et al., VLDB 2022).

A from-scratch implementation of distributed differential privacy for
federated learning with secure aggregation, including:

* the paper's **Skellam mixture mechanism** (SMM) and its discrete
  Gaussian variant (DGM),
* the full **baseline suite** — cpSGD, the distributed discrete Gaussian
  mechanism, the Skellam mechanism and continuous-Gaussian/DPSGD,
* all supporting substrates: exact integer-arithmetic samplers, Renyi-DP
  accounting (composition, Poisson subsampling, optimal-order
  conversion), Walsh-Hadamard rotations, a SecAgg simulator, a numpy
  neural network with per-example gradients, and the experiment harnesses
  that regenerate every table and figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import (AccountingSpec, CompressionConfig, InputSpec,
                       PrivacyBudget, SkellamMixtureMechanism)

    rng = np.random.default_rng(0)
    values = rng.normal(size=(100, 256))
    values /= np.linalg.norm(values, axis=1, keepdims=True)

    mechanism = SkellamMixtureMechanism(CompressionConfig(modulus=2**14,
                                                          gamma=64.0))
    mechanism.calibrate(InputSpec(num_participants=100, dimension=256),
                        AccountingSpec(budget=PrivacyBudget(epsilon=3.0)))
    estimate = mechanism.estimate_sum(values, rng)
"""

from repro.config import ClipConfig, CompressionConfig, PrivacyBudget
from repro.core.calibration import AccountingSpec, CalibrationResult
from repro.errors import (
    AggregationError,
    CalibrationError,
    ConfigurationError,
    OverflowWarning,
    PrivacyAccountingError,
    ReproError,
)
from repro.mechanisms import (
    CpSgdMechanism,
    DiscreteGaussianMixtureMechanism,
    DistributedDiscreteGaussian,
    GaussianMechanism,
    InputSpec,
    SkellamMechanism,
    SkellamMixtureMechanism,
    SumEstimator,
)

__version__ = "1.0.0"

__all__ = [
    "AccountingSpec",
    "AggregationError",
    "CalibrationError",
    "CalibrationResult",
    "ClipConfig",
    "CompressionConfig",
    "ConfigurationError",
    "CpSgdMechanism",
    "DiscreteGaussianMixtureMechanism",
    "DistributedDiscreteGaussian",
    "GaussianMechanism",
    "InputSpec",
    "OverflowWarning",
    "PrivacyAccountingError",
    "PrivacyBudget",
    "ReproError",
    "SkellamMechanism",
    "SkellamMixtureMechanism",
    "SumEstimator",
    "__version__",
]
