"""Exact Skellam sampler and Skellam distribution helpers.

A symmetric Skellam variate ``Sk(lambda, lambda)`` is the difference of two
independent Poisson(lambda) variates (Section 2.1 of the paper), so the
exact rational-Poisson sampler of Appendix A immediately yields an exact
Skellam sampler.

This module also provides the analytic pmf / moments of ``Sk(lambda,
lambda)`` (via the modified Bessel function), which the test suite uses to
validate both the exact and the fast samplers against their analytical
form.
"""

from __future__ import annotations

import dataclasses
import fractions
import math

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.sampling.exact_poisson import sample_poisson
from repro.sampling.rng import RandIntSource


def _as_rational(value: float | int | fractions.Fraction) -> fractions.Fraction:
    """Convert a parameter to an exact rational, rejecting non-finite input."""
    if isinstance(value, fractions.Fraction):
        return value
    if isinstance(value, int):
        return fractions.Fraction(value)
    if not math.isfinite(value):
        raise ConfigurationError(f"parameter must be finite, got {value}")
    return fractions.Fraction(value).limit_denominator(10**9)


@dataclasses.dataclass(frozen=True)
class SkellamDistribution:
    """The symmetric Skellam distribution ``Sk(lambda, lambda)``.

    Attributes:
        lam: The Poisson rate ``lambda`` of each of the two components;
            the variate has mean 0 and variance ``2 * lambda``.
    """

    lam: float

    def __post_init__(self) -> None:
        if not self.lam > 0:
            raise ConfigurationError(f"lambda must be positive, got {self.lam}")

    @property
    def variance(self) -> float:
        """Variance of ``Sk(lambda, lambda)``, equal to ``2 * lambda``."""
        return 2.0 * self.lam

    def pmf(self, k: np.ndarray | int) -> np.ndarray | float:
        """Probability mass ``Pr[Z = k] = exp(-2 lam) I_|k|(2 lam)``."""
        return stats.skellam.pmf(k, self.lam, self.lam)

    def cdf(self, k: np.ndarray | int) -> np.ndarray | float:
        """Cumulative distribution function of ``Sk(lambda, lambda)``."""
        return stats.skellam.cdf(k, self.lam, self.lam)


class ExactSkellamSampler:
    """Exact sampler for ``Sk(lambda, lambda)`` with rational ``lambda``.

    Draws two exact Poisson(lambda) variates (Algorithm 10) and returns
    their difference.  All arithmetic is over integers, so the output
    distribution is exactly Skellam.

    Args:
        lam: The rate parameter; coerced to an exact rational.  Floats are
            converted via :class:`fractions.Fraction` (denominator capped at
            ``1e9``), which is exact for the power-of-two-scaled parameters
            used in the experiments.
        seed: Optional seed for the underlying ``RandInt`` source.
    """

    def __init__(
        self,
        lam: float | int | fractions.Fraction,
        seed: int | None = None,
    ) -> None:
        rational = _as_rational(lam)
        if rational <= 0:
            raise ConfigurationError(f"lambda must be positive, got {lam}")
        self._numerator = rational.numerator
        self._denominator = rational.denominator
        self._source = RandIntSource(seed)

    @property
    def lam(self) -> fractions.Fraction:
        """The exact rational rate parameter."""
        return fractions.Fraction(self._numerator, self._denominator)

    def sample(self) -> int:
        """Draw one exact ``Sk(lambda, lambda)`` variate."""
        first = sample_poisson(self._numerator, self._denominator, self._source)
        second = sample_poisson(self._numerator, self._denominator, self._source)
        return first - second

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` i.i.d. exact Skellam variates (sequentially).

        Exact samplers are inherently sequential (Appendix A.1 measures
        exactly this cost); use :mod:`repro.sampling.fast` when a
        floating-point approximation is acceptable.
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        return [self.sample() for _ in range(count)]
