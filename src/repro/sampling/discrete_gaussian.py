"""Exact discrete Gaussian sampler (Canonne, Kamath and Steinke, 2020).

The paper's Table 1 compares exact Skellam sampling (Appendix A) against
exact discrete Gaussian sampling "following the implementation of Ref.
[32]" — the reference sampler of Canonne et al.  This module implements
that sampler from scratch with exact rational arithmetic:

1. ``Bernoulli(exp(-x))`` via the alternating-series trick (only rational
   Bernoulli trials are required),
2. a discrete Laplace sampler built from geometric variates, and
3. rejection sampling of the discrete Gaussian from the discrete Laplace
   envelope.

Every random decision reduces to :meth:`RandIntSource.rand_int`, matching
the convention of Appendix A, so the output distribution is exactly
``N_Z(0, sigma^2)``.
"""

from __future__ import annotations

import dataclasses
import fractions
import math

import numpy as np

from repro.errors import ConfigurationError
from repro.sampling.rng import RandIntSource

Fraction = fractions.Fraction


def _bernoulli_fraction(p: Fraction, source: RandIntSource) -> int:
    """Exact Bernoulli(p) trial for a rational ``p`` in [0, 1]."""
    return source.bernoulli(p.numerator, p.denominator)


def sample_bernoulli_exp_sub_one(x: Fraction, source: RandIntSource) -> int:
    """Exact ``Bernoulli(exp(-x))`` for rational ``0 <= x <= 1``.

    Runs the alternating-series construction: draw ``Bernoulli(x/k)`` for
    ``k = 1, 2, ...`` until the first failure; the parity of the stopping
    index is ``Bernoulli(exp(-x))``-distributed.
    """
    if not 0 <= x <= 1:
        raise ConfigurationError(f"require 0 <= x <= 1, got {x}")
    k = 1
    while _bernoulli_fraction(x / k, source) == 1:
        k += 1
    return k % 2


def sample_bernoulli_exp(x: Fraction, source: RandIntSource) -> int:
    """Exact ``Bernoulli(exp(-x))`` for any rational ``x >= 0``.

    Splits ``exp(-x)`` into ``exp(-1)^floor(x) * exp(-(x - floor(x)))`` and
    multiplies the independent Bernoulli outcomes (short-circuiting on the
    first failure).
    """
    if x < 0:
        raise ConfigurationError(f"require x >= 0, got {x}")
    while x > 1:
        if sample_bernoulli_exp_sub_one(Fraction(1), source) == 0:
            return 0
        x -= 1
    return sample_bernoulli_exp_sub_one(x, source)


def sample_geometric_exp_slow(x: Fraction, source: RandIntSource) -> int:
    """Geometric variate with success rate ``1 - exp(-x)``; O(output) time.

    Counts the number of consecutive ``Bernoulli(exp(-x))`` successes.
    """
    if x <= 0:
        raise ConfigurationError(f"require x > 0, got {x}")
    k = 0
    while sample_bernoulli_exp(x, source) == 1:
        k += 1
    return k


def sample_geometric_exp_fast(x: Fraction, source: RandIntSource) -> int:
    """Geometric variate with rate ``1 - exp(-x)``; O(log) expected time.

    Decomposes ``x = num/den``: draws a uniform residue ``u`` accepted with
    probability ``exp(-u/den)``, an independent ``Geometric(1 - e^-1)``
    block count ``v``, and returns ``(u + den * v) // num``.
    """
    if x <= 0:
        raise ConfigurationError(f"require x > 0, got {x}")
    num, den = x.numerator, x.denominator
    while True:
        u = source.rand_int(den) - 1
        if sample_bernoulli_exp(Fraction(u, den), source) == 1:
            break
    v = sample_geometric_exp_slow(Fraction(1), source)
    return (u + den * v) // num


def sample_discrete_laplace(scale: Fraction, source: RandIntSource) -> int:
    """Exact discrete Laplace variate with pmf ``∝ exp(-|k| / scale)``."""
    if scale <= 0:
        raise ConfigurationError(f"require scale > 0, got {scale}")
    while True:
        negative = _bernoulli_fraction(Fraction(1, 2), source)
        magnitude = sample_geometric_exp_fast(1 / scale, source)
        if negative == 1 and magnitude == 0:
            continue
        return -magnitude if negative == 1 else magnitude


def sample_discrete_gaussian(
    sigma_squared: Fraction, source: RandIntSource
) -> int:
    """Exact discrete Gaussian ``N_Z(0, sigma^2)`` variate.

    Rejection-samples from a discrete Laplace envelope with scale
    ``t = floor(sigma) + 1``, accepting a candidate ``y`` with probability
    ``exp(-(|y| - sigma^2/t)^2 / (2 sigma^2))``.
    """
    if sigma_squared <= 0:
        raise ConfigurationError(f"require sigma^2 > 0, got {sigma_squared}")
    t = math.isqrt(int(sigma_squared)) + 1
    while True:
        candidate = sample_discrete_laplace(Fraction(t), source)
        offset = abs(candidate) - sigma_squared / t
        acceptance_exponent = offset * offset / (2 * sigma_squared)
        if sample_bernoulli_exp(acceptance_exponent, source) == 1:
            return candidate


@dataclasses.dataclass(frozen=True)
class DiscreteGaussianDistribution:
    """The discrete Gaussian ``N_Z(0, sigma^2)`` (analytic helpers).

    The pmf is ``Pr[Z = k] ∝ exp(-k^2 / (2 sigma^2))`` over the integers.
    The *parameter* ``sigma^2`` is not exactly the variance, but the two
    agree to within ``O(exp(-2 pi^2 sigma^2))`` — negligible for
    ``sigma >= 1`` (Canonne et al.).
    """

    sigma_squared: float

    def __post_init__(self) -> None:
        if not self.sigma_squared > 0:
            raise ConfigurationError(
                f"sigma^2 must be positive, got {self.sigma_squared}"
            )

    def support(self, tail_mass: float = 1e-12) -> np.ndarray:
        """Integer support that carries all but ``tail_mass`` probability."""
        sigma = math.sqrt(self.sigma_squared)
        radius = int(math.ceil(sigma * math.sqrt(-2.0 * math.log(tail_mass)))) + 2
        return np.arange(-radius, radius + 1)

    def pmf(self, k: np.ndarray | int) -> np.ndarray | float:
        """Probability mass, normalised over a truncated support."""
        support = self.support()
        weights = np.exp(-(support.astype(float) ** 2) / (2.0 * self.sigma_squared))
        normaliser = weights.sum()
        k_arr = np.asarray(k)
        values = np.exp(-(k_arr.astype(float) ** 2) / (2.0 * self.sigma_squared))
        result = values / normaliser
        return result if result.ndim else float(result)

    @property
    def variance(self) -> float:
        """Exact variance of ``N_Z(0, sigma^2)`` over a truncated support."""
        support = self.support().astype(float)
        probs = self.pmf(support)
        return float(np.sum(probs * support**2))


class ExactDiscreteGaussianSampler:
    """Exact sampler for ``N_Z(0, sigma^2)`` with rational ``sigma^2``.

    Args:
        sigma_squared: The distribution parameter; coerced to an exact
            rational (denominator capped at ``1e9``).
        seed: Optional seed for the underlying ``RandInt`` source.
    """

    def __init__(
        self,
        sigma_squared: float | int | Fraction,
        seed: int | None = None,
    ) -> None:
        if isinstance(sigma_squared, Fraction):
            rational = sigma_squared
        else:
            rational = Fraction(sigma_squared).limit_denominator(10**9)
        if rational <= 0:
            raise ConfigurationError(
                f"sigma^2 must be positive, got {sigma_squared}"
            )
        self._sigma_squared = rational
        self._source = RandIntSource(seed)

    @property
    def sigma_squared(self) -> Fraction:
        """The exact rational distribution parameter."""
        return self._sigma_squared

    def sample(self) -> int:
        """Draw one exact ``N_Z(0, sigma^2)`` variate."""
        return sample_discrete_gaussian(self._sigma_squared, self._source)

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` i.i.d. exact discrete Gaussian variates."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        return [self.sample() for _ in range(count)]
