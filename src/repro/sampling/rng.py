"""Randomness primitives for the exact samplers.

Appendix A of the paper adopts the convention that ``RandInt(n)`` — a
uniform draw from ``{1, ..., n}`` — is the *only* randomness accessible to
an exact sampler.  Everything else (Bernoulli trials with rational success
probability, Poisson, Skellam, discrete Gaussian) is built from it with
integer arithmetic only, so the sampled distribution matches its analytical
form exactly and Mironov's floating-point attack does not apply.

:class:`RandIntSource` wraps :class:`random.Random` (whose ``randrange`` is
an exact uniform over a finite integer range) and exposes exactly that
interface.  Tests substitute a deterministic source to make sampler
execution paths reproducible.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError


class RandIntSource:
    """Uniform integer sampler: ``rand_int(n)`` draws from ``{1, ..., n}``.

    Args:
        seed: Optional seed for reproducibility.  ``None`` uses fresh
            OS entropy, which is what a deployment would do.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._random = random.Random(seed)

    def rand_int(self, n: int) -> int:
        """Return a uniform integer in ``{1, ..., n}``.

        Args:
            n: Upper bound (inclusive); must be a positive integer.

        Raises:
            ConfigurationError: If ``n`` is not a positive integer.
        """
        if n < 1:
            raise ConfigurationError(f"rand_int bound must be >= 1, got {n}")
        return self._random.randrange(n) + 1

    def bernoulli(self, numerator: int, denominator: int) -> int:
        """Exact Bernoulli trial with success probability ``p = num/den``.

        Implements Algorithm 9 of the paper: draw ``RandInt(den)`` and
        succeed iff the draw is ``<= num``.

        Args:
            numerator: ``p_x`` in the paper; must satisfy
                ``0 <= numerator <= denominator``.
            denominator: ``p_y`` in the paper; must be positive.

        Returns:
            1 with probability ``numerator / denominator``, else 0.
        """
        if denominator <= 0:
            raise ConfigurationError(
                f"Bernoulli denominator must be positive, got {denominator}"
            )
        if not 0 <= numerator <= denominator:
            raise ConfigurationError(
                "Bernoulli numerator must lie in [0, denominator], got "
                f"{numerator}/{denominator}"
            )
        if numerator == 0:
            return 0
        if numerator == denominator:
            return 1
        return 1 if self.rand_int(denominator) <= numerator else 0
