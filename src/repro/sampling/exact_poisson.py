"""Exact Poisson samplers (Algorithms 7, 8 and 10 of the paper).

The samplers draw from Poisson distributions with *rational* parameter
``lambda = m_x / m_y`` using only :meth:`RandIntSource.rand_int` and integer
arithmetic, so the output distribution is exactly Poisson — no
floating-point approximation is involved.

Construction (Appendix A):

* ``Poisson(1)`` — the Duchon-Duvignau algorithm (Algorithm 7), which
  maintains a growing random structure and terminates with an exactly
  Poisson(1)-distributed counter.
* ``Poisson(lambda)`` for ``0 < lambda < 1`` (Algorithm 8) — thin a
  Poisson(1) draw with i.i.d. Bernoulli(lambda) trials, using the identity
  that a Bernoulli-thinned Poisson is Poisson (Devroye, p. 487).
* General ``Poisson(lambda)`` (Algorithm 10) — additivity: repeatedly peel
  off Poisson(1) components while ``lambda >= 1``, then handle the
  fractional remainder with Algorithm 8.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sampling.rng import RandIntSource


def sample_poisson_one(source: RandIntSource) -> int:
    """Draw an exact Poisson(1) sample (Algorithm 7, Duchon-Duvignau).

    The loop grows a uniform random structure of size ``n + 1`` each round;
    the bookkeeping on ``(k, g)`` is arranged so that the value of ``k`` at
    termination is exactly Poisson(1)-distributed.

    Args:
        source: Source of uniform random integers.

    Returns:
        A non-negative integer distributed as Poisson(1).
    """
    n = 1
    g = 0
    k = 1
    while True:
        i = source.rand_int(n + 1)
        if i == n + 1:
            k += 1
        elif i > g:
            k -= 1
            g = n + 1
        else:
            return k
        n += 1


def sample_poisson_sub_one(
    numerator: int, denominator: int, source: RandIntSource
) -> int:
    """Draw an exact Poisson(m_x / m_y) sample for ``0 < m_x/m_y < 1``.

    Algorithm 8: draw ``N ~ Poisson(1)``, then return the sum of ``N``
    Bernoulli(m_x / m_y) trials.  The thinned count is exactly
    Poisson(m_x / m_y).

    Args:
        numerator: ``m_x``; must satisfy ``0 < m_x < m_y``.
        denominator: ``m_y``; must be positive.
        source: Source of uniform random integers.
    """
    if not 0 < numerator < denominator:
        raise ConfigurationError(
            f"require 0 < m_x < m_y, got m_x={numerator}, m_y={denominator}"
        )
    k = 0
    n = sample_poisson_one(source)
    for _ in range(n):
        k += source.bernoulli(numerator, denominator)
    return k


def sample_poisson(numerator: int, denominator: int, source: RandIntSource) -> int:
    """Draw an exact Poisson(m_x / m_y) sample for any rational rate >= 0.

    Algorithm 10: while ``lambda >= 1`` peel off independent Poisson(1)
    components (Poisson additivity), then sample the remaining fractional
    rate with Algorithm 8.

    Args:
        numerator: ``m_x >= 0``.
        denominator: ``m_y > 0``.
        source: Source of uniform random integers.

    Returns:
        A non-negative integer distributed as Poisson(m_x / m_y).
    """
    if denominator <= 0:
        raise ConfigurationError(f"m_y must be positive, got {denominator}")
    if numerator < 0:
        raise ConfigurationError(f"m_x must be non-negative, got {numerator}")
    k = 0
    if numerator == 0:
        return k
    m_x = numerator
    while m_x >= denominator:
        k += sample_poisson_one(source)
        m_x -= denominator
    if m_x > 0:
        k += sample_poisson_sub_one(m_x, denominator, source)
    return k
