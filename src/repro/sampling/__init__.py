"""Noise samplers: exact (integer-arithmetic) and fast (vectorised).

Exact samplers (Appendix A of the paper + Canonne et al. for the discrete
Gaussian) consume only uniform random integers, so their output follows the
analytical distribution exactly; fast samplers use numpy floating point and
stand in for the TensorFlow samplers of the paper's experiments.
"""

from repro.sampling.discrete_gaussian import (
    DiscreteGaussianDistribution,
    ExactDiscreteGaussianSampler,
    sample_bernoulli_exp,
    sample_discrete_gaussian,
    sample_discrete_laplace,
)
from repro.sampling.exact_poisson import (
    sample_poisson,
    sample_poisson_one,
    sample_poisson_sub_one,
)
from repro.sampling.fast import (
    bernoulli_round,
    binomial_noise,
    discrete_gaussian_noise,
    skellam_noise,
)
from repro.sampling.rng import RandIntSource
from repro.sampling.skellam import ExactSkellamSampler, SkellamDistribution

__all__ = [
    "DiscreteGaussianDistribution",
    "ExactDiscreteGaussianSampler",
    "ExactSkellamSampler",
    "RandIntSource",
    "SkellamDistribution",
    "bernoulli_round",
    "binomial_noise",
    "discrete_gaussian_noise",
    "sample_bernoulli_exp",
    "sample_discrete_gaussian",
    "sample_discrete_laplace",
    "sample_poisson",
    "sample_poisson_one",
    "sample_poisson_sub_one",
    "skellam_noise",
]
