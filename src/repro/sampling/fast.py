"""Fast vectorised samplers (floating-point, numpy-based).

The paper's experiments use "the approximate samplers for Discrete Gaussian
and Skellam from the TensorFlow libraries, which are based on floating
point approximations" (Section 6) because they are orders of magnitude
faster than the exact samplers.  This module plays the same role for our
pipelines:

* :func:`skellam` — difference of two vectorised Poisson draws,
* :func:`discrete_gaussian` — inverse-CDF sampling over a truncated
  integer support,
* :func:`centered_binomial` — ``Binomial(N, 1/2) - N/2`` noise for cpSGD.

All functions take an explicit :class:`numpy.random.Generator`; no global
random state is touched.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


def skellam_noise(
    lam: float, size: int | tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Sample ``Sk(lam, lam)`` variates as a Poisson difference.

    Args:
        lam: Rate of each Poisson component (variance of the output is
            ``2 * lam``); must be positive.
        size: Output shape.
        rng: Numpy random generator.

    Returns:
        An int64 array of shape ``size``.
    """
    if not lam > 0:
        raise ConfigurationError(f"lambda must be positive, got {lam}")
    first = rng.poisson(lam, size=size)
    second = rng.poisson(lam, size=size)
    return (first - second).astype(np.int64)


def discrete_gaussian_noise(
    sigma_squared: float,
    size: int | tuple[int, ...],
    rng: np.random.Generator,
    tail_mass: float = 1e-12,
) -> np.ndarray:
    """Sample ``N_Z(0, sigma^2)`` variates by inverse-CDF over a table.

    The support is truncated where the tail mass drops below ``tail_mass``;
    for the experiment parameter ranges (``sigma^2 <= 2^20``) the truncated
    mass is far below float precision, so the sampled law matches the
    discrete Gaussian up to floating-point rounding — the same fidelity
    class as the TensorFlow sampler the paper uses.

    Args:
        sigma_squared: Distribution parameter; must be positive.
        size: Output shape.
        rng: Numpy random generator.
        tail_mass: Total probability allowed outside the table.

    Returns:
        An int64 array of shape ``size``.
    """
    if not sigma_squared > 0:
        raise ConfigurationError(f"sigma^2 must be positive, got {sigma_squared}")
    sigma = math.sqrt(sigma_squared)
    radius = int(math.ceil(sigma * math.sqrt(-2.0 * math.log(tail_mass)))) + 2
    support = np.arange(-radius, radius + 1, dtype=np.int64)
    log_weights = -(support.astype(float) ** 2) / (2.0 * sigma_squared)
    weights = np.exp(log_weights - log_weights.max())
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    uniforms = rng.random(size=size)
    indices = np.searchsorted(cdf, uniforms, side="left")
    return support[indices]


def binomial_noise(
    num_trials: int, size: int | tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Sample ``Binomial(N, 1/2) - N/2`` noise (cpSGD's binomial mechanism).

    Args:
        num_trials: ``N``; must be a non-negative *even* integer so the
            centred noise is integer-valued.
        size: Output shape.
        rng: Numpy random generator.

    Returns:
        An int64 array of shape ``size`` with mean 0 and variance ``N/4``.
    """
    if num_trials < 0:
        raise ConfigurationError(f"N must be non-negative, got {num_trials}")
    if num_trials % 2 != 0:
        raise ConfigurationError(f"N must be even for integer noise, got {num_trials}")
    if num_trials == 0:
        return np.zeros(size, dtype=np.int64)
    draws = rng.binomial(num_trials, 0.5, size=size)
    return draws.astype(np.int64) - num_trials // 2


def bernoulli_round(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Randomise each value to ``floor(v)`` or ``floor(v) + 1`` unbiasedly.

    This is the shared Bernoulli step of SMM/DGM (lines 2-3 of Algorithm 1)
    and of stochastic rounding: the success probability is the fractional
    part ``p = v - floor(v)`` so the output's expectation equals ``v``.

    Args:
        values: Real-valued array.
        rng: Numpy random generator.

    Returns:
        An int64 array of the same shape, unbiased for ``values``.
    """
    floors = np.floor(values)
    fractions_part = values - floors
    successes = rng.random(size=values.shape) < fractions_part
    return (floors + successes).astype(np.int64)
