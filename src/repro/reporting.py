"""Structured experiment records and table rendering.

The benchmark harness and the CLI produce series of (configuration,
metric) cells; this module gives them one durable representation:

* :class:`ExperimentRecord` — one measured cell with its full context,
* :func:`to_json` / :func:`from_json` — lossless round-tripping so runs
  can be archived and re-rendered without re-running,
* :func:`render_markdown_table` — the paper-style series table as
  markdown (used to refresh EXPERIMENTS.md),
* :func:`write_csv` — flat export for external plotting.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from collections.abc import Sequence

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class ExperimentRecord:
    """One measured cell of an experiment grid.

    Attributes:
        experiment: Experiment id (e.g. ``"fig1"``, ``"table1"``).
        mechanism: Mechanism short name.
        metric: Metric name (``"mse"``, ``"accuracy"``, ``"seconds"``).
        value: The measured value.
        parameters: The sweep coordinates (epsilon, modulus, gamma, ...).
    """

    experiment: str
    mechanism: str
    metric: str
    value: float
    parameters: dict

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ConfigurationError("experiment id must be non-empty")
        if not self.mechanism:
            raise ConfigurationError("mechanism must be non-empty")


def to_json(records: Sequence[ExperimentRecord]) -> str:
    """Serialise records to a JSON array (stable key order)."""
    return json.dumps(
        [dataclasses.asdict(record) for record in records],
        indent=2,
        sort_keys=True,
    )


def from_json(payload: str) -> list[ExperimentRecord]:
    """Parse records produced by :func:`to_json`."""
    try:
        raw = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid record JSON: {exc}") from exc
    if not isinstance(raw, list):
        raise ConfigurationError("expected a JSON array of records")
    return [ExperimentRecord(**entry) for entry in raw]


def render_markdown_table(
    records: Sequence[ExperimentRecord],
    column_parameter: str,
    value_format: str = "{:.4g}",
) -> str:
    """Render records as a markdown table (mechanisms x parameter).

    Args:
        records: Cells of one experiment (mixed experiments are allowed;
            rows are keyed by mechanism only).
        column_parameter: The parameter providing the columns (e.g.
            ``"epsilon"``).
        value_format: Format spec for cell values.

    Returns:
        A GitHub-flavoured markdown table.
    """
    if not records:
        raise ConfigurationError("cannot render an empty record set")
    columns: list = []
    rows: dict[str, dict] = {}
    for record in records:
        if column_parameter not in record.parameters:
            raise ConfigurationError(
                f"record lacks parameter {column_parameter!r}: {record}"
            )
        column = record.parameters[column_parameter]
        if column not in columns:
            columns.append(column)
        rows.setdefault(record.mechanism, {})[column] = record.value
    header = (
        f"| mechanism | "
        + " | ".join(f"{column_parameter}={col}" for col in columns)
        + " |"
    )
    divider = "|" + "---|" * (len(columns) + 1)
    lines = [header, divider]
    for mechanism, cells in rows.items():
        rendered = " | ".join(
            value_format.format(cells[col]) if col in cells else "-"
            for col in columns
        )
        lines.append(f"| {mechanism} | {rendered} |")
    return "\n".join(lines)


def write_csv(records: Sequence[ExperimentRecord]) -> str:
    """Flatten records to CSV text (one parameter column per key)."""
    if not records:
        raise ConfigurationError("cannot export an empty record set")
    parameter_keys = sorted(
        {key for record in records for key in record.parameters}
    )
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["experiment", "mechanism", "metric", "value", *parameter_keys]
    )
    for record in records:
        writer.writerow(
            [
                record.experiment,
                record.mechanism,
                record.metric,
                record.value,
                *[record.parameters.get(key, "") for key in parameter_keys],
            ]
        )
    return buffer.getvalue()
