"""Linear-algebra substrate: Walsh-Hadamard rotation and mod-m codec."""

from repro.linalg.hadamard import (
    RandomRotation,
    fast_walsh_hadamard,
    is_power_of_two,
    naive_walsh_hadamard_matrix,
    next_power_of_two,
)
from repro.linalg.modular import decode_centered, encode_mod, wraps_around

__all__ = [
    "RandomRotation",
    "decode_centered",
    "encode_mod",
    "fast_walsh_hadamard",
    "is_power_of_two",
    "naive_walsh_hadamard_matrix",
    "next_power_of_two",
    "wraps_around",
]
