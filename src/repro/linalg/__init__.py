"""Linear-algebra substrate: Walsh-Hadamard rotation and mod-m codec."""

from repro.linalg.hadamard import (
    RandomRotation,
    fast_walsh_hadamard,
    is_power_of_two,
    naive_walsh_hadamard_matrix,
    next_power_of_two,
)
from repro.linalg.modular import (
    LIMB_SPLIT_MAX_MODULUS,
    decode_centered,
    encode_mod,
    horner_mod,
    inv_mod,
    mul_mod,
    pow_mod,
    sum_mod,
    wraps_around,
)

__all__ = [
    "LIMB_SPLIT_MAX_MODULUS",
    "RandomRotation",
    "decode_centered",
    "encode_mod",
    "fast_walsh_hadamard",
    "horner_mod",
    "inv_mod",
    "is_power_of_two",
    "mul_mod",
    "naive_walsh_hadamard_matrix",
    "next_power_of_two",
    "pow_mod",
    "sum_mod",
    "wraps_around",
]
