"""Modular wraparound codec for the SecAgg wire format.

Clients reduce their integer vectors modulo ``m`` before aggregation (line
11 of Algorithm 4) and the server maps the aggregated residues back to the
centred interval ``[-m/2, m/2)`` (line 1 of Algorithm 6):

* residues in ``{0, ..., m/2 - 1}`` decode to themselves, and
* residues in ``{m/2, ..., m - 1}`` decode to ``{-m/2, ..., -1}``.

Decoding recovers the true integer sum exactly when it lies in the centred
interval; otherwise it wraps around — the overflow failure mode that
dominates the baselines' error at small bitwidths (Section 6).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _validate_modulus(modulus: int) -> None:
    if modulus < 2 or modulus % 2 != 0:
        raise ConfigurationError(
            f"modulus must be an even integer >= 2, got {modulus}"
        )


def encode_mod(values: np.ndarray, modulus: int) -> np.ndarray:
    """Reduce integer values into ``Z_m = {0, ..., m-1}``.

    Args:
        values: Integer array (any signed values).
        modulus: The SecAgg modulus ``m``.

    Returns:
        An int64 array with every entry in ``[0, m)``.
    """
    _validate_modulus(modulus)
    encoded = np.mod(np.asarray(values, dtype=np.int64), modulus)
    return encoded.astype(np.int64)


def decode_centered(residues: np.ndarray, modulus: int) -> np.ndarray:
    """Map residues in ``Z_m`` to the centred interval ``[-m/2, m/2)``.

    Args:
        residues: Integer array with entries in ``[0, m)``.
        modulus: The SecAgg modulus ``m``.

    Returns:
        An int64 array with entries in ``[-m/2, m/2)``.

    Raises:
        ConfigurationError: If any residue lies outside ``[0, m)``.
    """
    _validate_modulus(modulus)
    residues = np.asarray(residues, dtype=np.int64)
    if residues.size and (residues.min() < 0 or residues.max() >= modulus):
        raise ConfigurationError(
            f"residues must lie in [0, {modulus}), got range "
            f"[{residues.min()}, {residues.max()}]"
        )
    half = modulus // 2
    return np.where(residues >= half, residues - modulus, residues).astype(np.int64)


def wraps_around(values: np.ndarray, modulus: int) -> bool:
    """Return True if any value lies outside the decodable centred range.

    A sum that leaves ``[-m/2, m/2)`` cannot be recovered from its residue;
    the mechanisms use this predicate to emit :class:`repro.errors.OverflowWarning`.
    """
    _validate_modulus(modulus)
    values = np.asarray(values)
    half = modulus // 2
    return bool(np.any(values < -half) or np.any(values >= half))
