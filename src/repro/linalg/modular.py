"""Modular wraparound codec and vectorised prime-field arithmetic.

Two layers share this module:

*Wire format.* Clients reduce their integer vectors modulo ``m`` before
aggregation (line 11 of Algorithm 4) and the server maps the aggregated
residues back to the centred interval ``[-m/2, m/2)`` (line 1 of
Algorithm 6):

* residues in ``{0, ..., m/2 - 1}`` decode to themselves, and
* residues in ``{m/2, ..., m - 1}`` decode to ``{-m/2, ..., -1}``.

Decoding recovers the true integer sum exactly when it lies in the centred
interval; otherwise it wraps around — the overflow failure mode that
dominates the baselines' error at small bitwidths (Section 6).

*Field kernels.* The vectorised SecAgg kernels
(:mod:`repro.secagg.kernels`) run Shamir share generation and Lagrange
reconstruction as numpy array programs over the 61-bit prime field.
Products of two 61-bit residues need 122 bits, which uint64 cannot hold,
so :func:`mul_mod` splits each operand into 32-bit limbs and reduces the
partial products with shift-and-mod steps that each stay below ``2^64``
— exact modular multiplication without arbitrary-precision integers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Largest modulus the limb-split kernels support.  Operands live in
#: ``[0, m)``; with ``m <= 2^61`` every intermediate (cross-limb partial
#: products, 3-bit shift-reduce steps) provably fits in uint64.
LIMB_SPLIT_MAX_MODULUS = 1 << 61

_LIMB_MASK = np.uint64((1 << 32) - 1)
_LIMB_SHIFT = np.uint64(32)

#: Mersenne prime 2^61 - 1 — the default SecAgg field modulus, with a
#: dedicated fast reduction (2^61 ≡ 1 lets the 128-bit product fold into
#: 64 bits with shifts instead of repeated division).
_M61 = (1 << 61) - 1
_M61_U64 = np.uint64(_M61)


def _validate_field_modulus(modulus: int) -> np.uint64:
    if not 2 <= modulus <= LIMB_SPLIT_MAX_MODULUS:
        raise ConfigurationError(
            f"limb-split kernels need 2 <= modulus <= 2^61, got {modulus}"
        )
    return np.uint64(modulus)


def _shift32_mod(values: np.ndarray, modulus: np.uint64) -> np.ndarray:
    """``(values * 2^32) mod m`` for ``values < m <= 2^61``.

    Shifting 3 bits at a time keeps every intermediate below ``2^64``
    (``x < 2^61`` implies ``x << 3 < 2^64``), so the reduction is exact
    in uint64.
    """
    for shift in (3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 2):  # 32 bits total
        values = (values << np.uint64(shift)) % modulus
    return values


def _mul_mod_m61(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a * b) mod (2^61 - 1)`` for operands already in ``[0, 2^61)``.

    Standard 32-bit-limb "mulhi": the high 64 bits of the 128-bit
    product are assembled from the four partial products (each < 2^64),
    then the whole product folds modulo the Mersenne prime using
    ``2^64 ≡ 8`` and ``2^61 ≡ 1``.
    """
    a1, a0 = a >> _LIMB_SHIFT, a & _LIMB_MASK
    b1, b0 = b >> _LIMB_SHIFT, b & _LIMB_MASK
    mid1 = a1 * b0
    mid2 = a0 * b1
    carry = ((a0 * b0 >> _LIMB_SHIFT) + (mid1 & _LIMB_MASK) + (
        mid2 & _LIMB_MASK
    )) >> _LIMB_SHIFT
    high = a1 * b1 + (mid1 >> _LIMB_SHIFT) + (mid2 >> _LIMB_SHIFT) + carry
    with np.errstate(over="ignore"):
        low = a * b  # uint64 wraparound keeps exactly the low 64 bits
    folded = (high << np.uint64(3)) + (low >> np.uint64(61)) + (
        low & _M61_U64
    )
    return folded % _M61_U64


def mul_mod(
    a: np.ndarray | int, b: np.ndarray | int, modulus: int
) -> np.ndarray:
    """Exact ``(a * b) mod m`` on uint64 arrays via 32-bit limb splitting.

    Args:
        a: Residues in ``[0, m)`` (array or scalar; broadcast applies).
        b: Residues in ``[0, m)``.
        modulus: The modulus ``m``, at most :data:`LIMB_SPLIT_MAX_MODULUS`.

    Returns:
        ``(a * b) mod m`` as a uint64 array, exact even though the full
        128-bit product never materialises: with ``a = a1*2^32 + a0`` and
        ``b = b1*2^32 + b0``, the partial products ``a1*b1 < 2^58``,
        ``a1*b0 + a0*b1 < 2^62`` and ``a0*b0 < 2^64`` each fit in uint64,
        and the radix recombination uses :func:`_shift32_mod`.

    Raises:
        ConfigurationError: If the modulus is outside ``[2, 2^61]``.
    """
    m = _validate_field_modulus(modulus)
    a = np.asarray(a, dtype=np.uint64) % m
    b = np.asarray(b, dtype=np.uint64) % m
    if modulus == _M61:
        return _mul_mod_m61(a, b)
    a1, a0 = a >> _LIMB_SHIFT, a & _LIMB_MASK
    b1, b0 = b >> _LIMB_SHIFT, b & _LIMB_MASK
    result = _shift32_mod(a1 * b1 % m, m)
    result = _shift32_mod((result + (a1 * b0 + a0 * b1) % m) % m, m)
    return (result + a0 * b0 % m) % m


def pow_mod(
    base: np.ndarray | int, exponent: int, modulus: int
) -> np.ndarray:
    """Vectorised ``base ** exponent mod m`` by square-and-multiply.

    Args:
        base: Residues in ``[0, m)``.
        exponent: Non-negative integer exponent (shared by all lanes).
        modulus: Modulus, at most :data:`LIMB_SPLIT_MAX_MODULUS`.

    Returns:
        Element-wise modular power as a uint64 array.

    Raises:
        ConfigurationError: On a negative exponent or oversized modulus.
    """
    m = _validate_field_modulus(modulus)
    if exponent < 0:
        raise ConfigurationError(
            f"exponent must be >= 0, got {exponent}"
        )
    base = np.asarray(base, dtype=np.uint64) % m
    result = np.ones_like(base)
    while exponent:
        if exponent & 1:
            result = mul_mod(result, base, modulus)
        exponent >>= 1
        if exponent:
            base = mul_mod(base, base, modulus)
    return result


def pow_mod_elementwise(
    bases: np.ndarray, exponents: np.ndarray, modulus: int
) -> np.ndarray:
    """Lane-wise ``bases[i] ** exponents[i] mod m`` in one batched sweep.

    Branchless square-and-multiply: every iteration squares all lanes
    and multiplies the lanes whose current exponent bit is set.  The
    entire sweep is ``O(max_bits)`` *vectorised* multiplications, so a
    batch of 100k exponentiations costs a few dozen array passes — the
    kernel behind the simulation's all-pairs Diffie-Hellman warm-up.

    Args:
        bases: Residues in ``[0, m)``.
        exponents: Non-negative 64-bit exponents, one per base.
        modulus: Modulus, at most :data:`LIMB_SPLIT_MAX_MODULUS`.

    Returns:
        Element-wise modular power as a uint64 array.
    """
    m = _validate_field_modulus(modulus)
    bases = np.asarray(bases, dtype=np.uint64) % m
    exponents = np.asarray(exponents, dtype=np.uint64).copy()
    result = np.ones_like(bases)
    one = np.uint64(1)
    while np.any(exponents):
        odd = (exponents & one).astype(bool)
        result = np.where(odd, mul_mod(result, bases, modulus), result)
        exponents >>= one
        if np.any(exponents):
            bases = mul_mod(bases, bases, modulus)
    return result


def inv_mod(values: np.ndarray | int, prime: int) -> np.ndarray:
    """Vectorised multiplicative inverse over ``GF(p)`` (Fermat).

    Args:
        values: Nonzero residues in ``[1, p)``.
        prime: A prime modulus, at most :data:`LIMB_SPLIT_MAX_MODULUS`.

    Returns:
        Element-wise ``values^{-1} mod p``.

    Raises:
        ZeroDivisionError: If any lane is zero modulo ``p``.
    """
    values = np.asarray(values, dtype=np.uint64) % np.uint64(prime)
    if np.any(values == 0):
        raise ZeroDivisionError("zero has no multiplicative inverse")
    return pow_mod(values, prime - 2, prime)


def horner_mod(
    coefficients: np.ndarray, xs: np.ndarray, modulus: int
) -> np.ndarray:
    """Evaluate polynomials at many points, all lanes at once.

    Args:
        coefficients: ``(num_polys, degree + 1)`` uint64-compatible
            matrix, lowest-degree coefficient first (the Shamir secret
            sits in column 0), entries in ``[0, m)``.
        xs: ``(num_points,)`` evaluation points in ``[0, m)``.
        modulus: Modulus, at most :data:`LIMB_SPLIT_MAX_MODULUS`.

    Returns:
        ``(num_polys, num_points)`` uint64 matrix ``f_k(x_j) mod m`` —
        Horner's rule, one vectorised multiply-add per degree.
    """
    m = _validate_field_modulus(modulus)
    coefficients = np.atleast_2d(np.asarray(coefficients, dtype=np.uint64))
    xs = np.asarray(xs, dtype=np.uint64)
    if modulus == _M61 and xs.size == 0:
        return _horner_m61_small_x(coefficients % m, xs)
    if modulus == _M61 and int(xs.max()) < (1 << 14):
        # Even/odd split: f(x) = g(x²) + x·h(x²).  Stacking g and h into
        # one coefficient matrix halves the (sequential) Horner steps by
        # doubling the (vectorised) row count — a straight win while the
        # per-step cost is numpy-call-bound.  Needs x² < 2^29 for the
        # lazy-reduction kernel, hence x < 2^14.
        num_polys, num_coeffs = coefficients.shape
        even = coefficients[:, 0::2] % m
        odd = coefficients[:, 1::2] % m
        if odd.shape[1] < even.shape[1]:
            odd = np.pad(odd, ((0, 0), (0, 1)))
        stacked = _horner_m61_small_x(
            np.concatenate([even, odd]), xs * xs
        )
        return (
            stacked[:num_polys]
            + mul_mod(stacked[num_polys:], xs[np.newaxis, :], modulus)
        ) % m
    if modulus == _M61 and int(xs.max()) < (1 << 29):
        return _horner_m61_small_x(coefficients % m, xs)
    result = np.zeros((coefficients.shape[0], xs.shape[0]), dtype=np.uint64)
    for column in range(coefficients.shape[1] - 1, -1, -1):
        result = mul_mod(result, xs[np.newaxis, :], modulus)
        # result < m <= 2^61 and coefficient < m, so the sum fits uint64.
        result = (result + coefficients[:, column : column + 1] % m) % m
    return result


def _horner_m61_small_x(
    coefficients: np.ndarray, xs: np.ndarray
) -> np.ndarray:
    """Horner over ``GF(2^61 - 1)`` with lazy reduction for small points.

    Shamir evaluation points are tiny (``x = 1..num_shares``), so the
    accumulator can run *unreduced* below ``2^63``: with ``r = rh·2^32 +
    rl`` the step ``r·x`` becomes ``(w >> 29) + ((w mod 2^29) << 32) +
    rl·x`` for ``w = rh·x`` — exact modulo the Mersenne prime because
    ``2^61 ≡ 1`` — and the invariant ``r < 2^63`` holds for ``x < 2^29``
    with every intermediate inside uint64.  One final ``% p`` canonises
    the result; no per-step division at all.
    """
    mask29 = np.uint64((1 << 29) - 1)
    shift29 = np.uint64(29)
    xs = xs[np.newaxis, :]
    result = np.zeros((coefficients.shape[0], xs.shape[1]), dtype=np.uint64)
    high = np.empty_like(result)
    scratch = np.empty_like(result)
    for column in range(coefficients.shape[1] - 1, -1, -1):
        np.right_shift(result, _LIMB_SHIFT, out=high)
        np.multiply(high, xs, out=high)
        result &= _LIMB_MASK
        result *= xs
        np.right_shift(high, shift29, out=scratch)
        result += scratch
        high &= mask29
        high <<= _LIMB_SHIFT
        result += high
        result += coefficients[:, column : column + 1]
    return result % _M61_U64


def sum_mod(values: np.ndarray, modulus: int, axis: int = 0) -> np.ndarray:
    """Overflow-safe ``values.sum(axis) mod m`` for entries in ``[0, m)``.

    int64/uint64 sums of many near-modulus entries overflow, so the
    reduction runs in chunks of at most ``2^63 // m`` rows, reducing
    modulo ``m`` between chunks.
    """
    m = _validate_field_modulus(modulus)
    values = np.asarray(values, dtype=np.uint64)
    if values.shape[axis] == 0:
        return np.zeros(
            tuple(np.delete(values.shape, axis)), dtype=np.uint64
        )
    chunk = max(1, (1 << 63) // int(modulus))
    values = np.moveaxis(values, axis, 0)
    total = np.zeros(values.shape[1:], dtype=np.uint64)
    for start in range(0, values.shape[0], chunk):
        total = (total + values[start : start + chunk].sum(axis=0)) % m
    return total


def _validate_modulus(modulus: int) -> None:
    if modulus < 2 or modulus % 2 != 0:
        raise ConfigurationError(
            f"modulus must be an even integer >= 2, got {modulus}"
        )


def encode_mod(values: np.ndarray, modulus: int) -> np.ndarray:
    """Reduce integer values into ``Z_m = {0, ..., m-1}``.

    Args:
        values: Integer array (any signed values).
        modulus: The SecAgg modulus ``m``.

    Returns:
        An int64 array with every entry in ``[0, m)``.
    """
    _validate_modulus(modulus)
    encoded = np.mod(np.asarray(values, dtype=np.int64), modulus)
    return encoded.astype(np.int64)


def decode_centered(residues: np.ndarray, modulus: int) -> np.ndarray:
    """Map residues in ``Z_m`` to the centred interval ``[-m/2, m/2)``.

    Args:
        residues: Integer array with entries in ``[0, m)``.
        modulus: The SecAgg modulus ``m``.

    Returns:
        An int64 array with entries in ``[-m/2, m/2)``.

    Raises:
        ConfigurationError: If any residue lies outside ``[0, m)``.
    """
    _validate_modulus(modulus)
    residues = np.asarray(residues, dtype=np.int64)
    if residues.size and (residues.min() < 0 or residues.max() >= modulus):
        raise ConfigurationError(
            f"residues must lie in [0, {modulus}), got range "
            f"[{residues.min()}, {residues.max()}]"
        )
    half = modulus // 2
    return np.where(residues >= half, residues - modulus, residues).astype(np.int64)


def wraps_around(values: np.ndarray, modulus: int) -> bool:
    """Return True if any value lies outside the decodable centred range.

    A sum that leaves ``[-m/2, m/2)`` cannot be recovered from its residue;
    the mechanisms use this predicate to emit :class:`repro.errors.OverflowWarning`.
    """
    _validate_modulus(modulus)
    values = np.asarray(values)
    half = modulus // 2
    return bool(np.any(values < -half) or np.any(values >= half))
