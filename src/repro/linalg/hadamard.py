"""Randomised Walsh-Hadamard rotation (line 1 of Algorithm 4).

Every distributed mechanism in the paper first flattens each participant's
gradient with the map ``g -> H_d D_xi g`` where ``H_d`` is the normalised
``d x d`` Walsh-Hadamard matrix (``H^T H = I``) and ``D_xi`` is a diagonal
of public i.i.d. random signs.  After the rotation every coordinate is
sub-Gaussian with variance ``O(||g||_2^2 / d)``, which bounds the overflow
probability of the modular aggregation.

The transform is computed in ``O(d log d)`` with the iterative butterfly
(no ``d x d`` matrix is ever materialised) and operates on a batch of rows
at once.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError


def is_power_of_two(value: int) -> bool:
    """Return True iff ``value`` is a positive integral power of two."""
    return value >= 1 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value`` (``value`` must be >= 1)."""
    if value < 1:
        raise ConfigurationError(f"value must be >= 1, got {value}")
    return 1 << (value - 1).bit_length()


def fast_walsh_hadamard(matrix: np.ndarray) -> np.ndarray:
    """Apply the normalised Walsh-Hadamard transform to each row.

    Args:
        matrix: Array of shape ``(batch, d)`` or ``(d,)`` with ``d`` a
            power of two.

    Returns:
        ``matrix @ H_d^T`` (``H`` is symmetric, so equivalently
        ``H_d`` applied to each row), same shape, float64, normalised so
        the transform is orthonormal (applying it twice is the identity).
    """
    single_vector = matrix.ndim == 1
    work = np.array(matrix, dtype=np.float64, copy=True)
    if single_vector:
        work = work[np.newaxis, :]
    if work.ndim != 2:
        raise ConfigurationError(
            f"expected a vector or a batch of rows, got ndim={matrix.ndim}"
        )
    dimension = work.shape[1]
    if not is_power_of_two(dimension):
        raise ConfigurationError(
            f"Walsh-Hadamard dimension must be a power of two, got {dimension}"
        )
    half = 1
    while half < dimension:
        butterflies = work.reshape(work.shape[0], -1, 2, half)
        top = butterflies[:, :, 0, :]
        bottom = butterflies[:, :, 1, :]
        difference = top - bottom
        np.add(top, bottom, out=top)
        bottom[...] = difference
        half *= 2
    work /= np.sqrt(dimension)
    return work[0] if single_vector else work


def naive_walsh_hadamard_matrix(dimension: int) -> np.ndarray:
    """Materialise the normalised ``H_d`` by Sylvester recursion (tests only)."""
    if not is_power_of_two(dimension):
        raise ConfigurationError(
            f"dimension must be a power of two, got {dimension}"
        )
    h = np.array([[1.0]])
    while h.shape[0] < dimension:
        h = np.block([[h, h], [h, -h]])
    return h / np.sqrt(dimension)


@dataclasses.dataclass(frozen=True)
class RandomRotation:
    """The shared public rotation ``x -> H_d D_xi x`` with padding.

    All participants and the server construct the same instance from the
    public random sign vector ``xi`` (in a deployment, derived from a
    shared seed).  Inputs of length ``input_dim`` are zero-padded to the
    next power of two before rotating.

    Attributes:
        signs: The public sign vector ``xi`` of padded length; entries
            in ``{-1, +1}``.
        input_dim: Length of un-padded inputs accepted by :meth:`forward`.
    """

    signs: np.ndarray
    input_dim: int

    def __post_init__(self) -> None:
        if self.signs.ndim != 1:
            raise ConfigurationError("signs must be a one-dimensional array")
        if not is_power_of_two(self.signs.shape[0]):
            raise ConfigurationError(
                f"padded dimension must be a power of two, got {self.signs.shape[0]}"
            )
        if not np.all(np.abs(self.signs) == 1):
            raise ConfigurationError("signs must contain only -1 and +1")
        if not 1 <= self.input_dim <= self.signs.shape[0]:
            raise ConfigurationError(
                f"input_dim must be in [1, {self.signs.shape[0]}], got {self.input_dim}"
            )

    @classmethod
    def create(cls, input_dim: int, rng: np.random.Generator) -> "RandomRotation":
        """Draw a fresh public sign vector for inputs of length ``input_dim``."""
        padded = next_power_of_two(input_dim)
        signs = rng.choice(np.array([-1.0, 1.0]), size=padded)
        return cls(signs=signs, input_dim=input_dim)

    @property
    def padded_dim(self) -> int:
        """The power-of-two dimension vectors are padded to."""
        return self.signs.shape[0]

    def forward(self, vectors: np.ndarray) -> np.ndarray:
        """Rotate: zero-pad to ``padded_dim``, apply ``H D_xi``.

        Args:
            vectors: Shape ``(batch, input_dim)`` or ``(input_dim,)``.

        Returns:
            Rotated array of padded width (norms are preserved).
        """
        single_vector = vectors.ndim == 1
        batch = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if batch.shape[1] != self.input_dim:
            raise ConfigurationError(
                f"expected input width {self.input_dim}, got {batch.shape[1]}"
            )
        padded = np.zeros((batch.shape[0], self.padded_dim))
        padded[:, : self.input_dim] = batch
        rotated = fast_walsh_hadamard(padded * self.signs)
        return rotated[0] if single_vector else rotated

    def inverse(self, vectors: np.ndarray) -> np.ndarray:
        """Un-rotate: apply ``D_xi H^T`` and strip the zero padding.

        Args:
            vectors: Shape ``(batch, padded_dim)`` or ``(padded_dim,)``.

        Returns:
            Array of width ``input_dim`` such that
            ``inverse(forward(x)) == x`` up to float rounding.
        """
        single_vector = vectors.ndim == 1
        batch = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if batch.shape[1] != self.padded_dim:
            raise ConfigurationError(
                f"expected padded width {self.padded_dim}, got {batch.shape[1]}"
            )
        unrotated = fast_walsh_hadamard(batch) * self.signs
        result = unrotated[:, : self.input_dim]
        return result[0] if single_vector else result
