"""Closed-form utility predictions and mechanism bound comparisons."""

from repro.analysis.numerical import (
    bound_tightness,
    exact_skellam_divergence,
    exact_smm_divergence,
    gaussian_reference_divergence,
    numerical_renyi_divergence,
    theorem3_bound,
    theorem5_bound,
)
from repro.analysis.theory import (
    SensitivityComparison,
    epsilon_curve,
    noise_variance_ratio,
    sensitivity_inflation,
    smm_expected_error,
    smm_gaussian_error_ratio,
)

__all__ = [
    "SensitivityComparison",
    "bound_tightness",
    "epsilon_curve",
    "exact_skellam_divergence",
    "exact_smm_divergence",
    "gaussian_reference_divergence",
    "noise_variance_ratio",
    "numerical_renyi_divergence",
    "sensitivity_inflation",
    "smm_expected_error",
    "smm_gaussian_error_ratio",
    "theorem3_bound",
    "theorem5_bound",
]
