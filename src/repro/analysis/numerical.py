"""Numerically exact Rényi divergences for the paper's noise distributions.

Theorems 3-5 give *closed-form upper bounds* on the Rényi divergence of
shifted Skellam and Skellam-mixture distributions.  Because every
distribution involved is a PMF over the integers, the divergences can
also be computed *exactly* (up to truncation) by direct summation.  This
module does that, which lets the test suite verify the theorems —
``exact <= bound`` across the parameter space — and lets the ablation
benchmarks quantify how much of the bound is slack (the paper's future
work: "further reduce the constant factor in the privacy analysis").

All computations run in log space over a truncated support whose tail
mass is far below double precision for the parameter ranges exercised.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import logsumexp

from repro.accounting.divergences import skellam_rdp, smm_rdp
from repro.accounting.pld import (
    skellam_pair_pmfs,
    smm_pair_pmfs,
)
from repro.errors import PrivacyAccountingError


def numerical_renyi_divergence(
    p: np.ndarray, q: np.ndarray, alpha: float
) -> float:
    """Exact ``D_alpha(P || Q)`` of two PMFs on a common support.

    ``D_alpha = 1/(alpha - 1) * log sum_i p_i^alpha q_i^{1 - alpha}``,
    evaluated with a log-sum-exp over the support of ``P``.

    Args:
        p: Numerator PMF.
        q: Denominator PMF, aligned index-by-index.
        alpha: Renyi order (> 1).

    Returns:
        The divergence in nats; ``inf`` when ``P`` puts mass where ``Q``
        does not.

    Raises:
        PrivacyAccountingError: On an invalid order or mismatched shapes.
    """
    if not alpha > 1:
        raise PrivacyAccountingError(f"order must be > 1, got {alpha}")
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise PrivacyAccountingError(
            f"PMF shapes differ: {p.shape} vs {q.shape}"
        )
    support = p > 0
    if (q[support] == 0).any():
        return math.inf
    log_terms = alpha * np.log(p[support]) + (1.0 - alpha) * np.log(
        q[support]
    )
    return float(logsumexp(log_terms)) / (alpha - 1.0)


def exact_skellam_divergence(
    shift: int, total_lambda: float, alpha: float
) -> float:
    """Exact ``D_alpha(s + Sk(lam, lam) || Sk(lam, lam))`` (Theorem 3 LHS).

    Args:
        shift: Integer shift ``s``.
        total_lambda: Skellam parameter ``lam`` of the aggregate noise.
        alpha: Renyi order (> 1).
    """
    p, q = skellam_pair_pmfs(shift, total_lambda)
    return numerical_renyi_divergence(p, q, alpha)


def theorem3_bound(shift: int, total_lambda: float, alpha: float) -> float:
    """Theorem 3's closed form ``(1.09 alpha + 0.91)/2 * s^2 / (2 lam)``.

    Thin wrapper over :func:`repro.accounting.divergences.skellam_rdp`
    with the single-record sensitivity ``c = s^2``, ``Delta_inf = |s|``.
    """
    return skellam_rdp(alpha, float(shift) ** 2, total_lambda, abs(shift))


def exact_smm_divergence(
    value: float,
    total_lambda: float,
    alpha: float,
    direction: str = "worst",
) -> float:
    """Exact Rényi divergence of the SMM worst-case pair (Lemma 4).

    ``Q = Sk(n lam)`` is the mechanism on the all-zero dataset and ``P``
    the mixture with one extra record of value ``x`` (see
    :func:`repro.accounting.pld.smm_pair_pmfs`).  Lemma 5 bounds both
    directions:

    * ``"A"`` — ``D_alpha(Q || P)`` (record removed),
    * ``"B"`` — ``D_alpha(P || Q)`` (record added),
    * ``"worst"`` — the max of the two, which Theorem 5 must dominate.

    Args:
        value: The extra record's (scaled) value.
        total_lambda: Aggregate Skellam parameter ``n * lam``.
        alpha: Renyi order (> 1).
        direction: ``"A"``, ``"B"`` or ``"worst"``.
    """
    p, q = smm_pair_pmfs(value, total_lambda)
    if direction == "A":
        return numerical_renyi_divergence(q, p, alpha)
    if direction == "B":
        return numerical_renyi_divergence(p, q, alpha)
    if direction == "worst":
        return max(
            numerical_renyi_divergence(q, p, alpha),
            numerical_renyi_divergence(p, q, alpha),
        )
    raise PrivacyAccountingError(
        f"direction must be 'A', 'B' or 'worst', got {direction!r}"
    )


def theorem5_bound(value: float, total_lambda: float, alpha: float) -> float:
    """Theorem 5's closed form ``(1.2 alpha + 1)/2 * c / (2 n lam)``.

    The single-record mixture sensitivity is ``c = x^2 + p - p^2`` with
    ``p`` the fractional part of ``|x|`` (Eq. (4) with one nonzero
    coordinate).
    """
    magnitude = abs(value)
    frac = magnitude - math.floor(magnitude)
    c = magnitude**2 + frac - frac**2
    # Delta_inf >= 1 keeps Eq. (3) well defined; enlarging it only
    # tightens the feasibility check, never the bound itself.
    return smm_rdp(alpha, c, total_lambda, max(1, math.ceil(magnitude)))


def bound_tightness(
    value: float, total_lambda: float, alpha: float
) -> float:
    """Ratio ``Theorem 5 bound / exact divergence`` (>= 1 when the theorem
    holds; how far above 1 measures the analysis slack)."""
    exact = exact_smm_divergence(value, total_lambda, alpha)
    if exact <= 1e-12:
        return math.inf
    return theorem5_bound(value, total_lambda, alpha) / exact


def gaussian_reference_divergence(
    shift: float, variance: float, alpha: float
) -> float:
    """``D_alpha`` of two Gaussians at distance ``shift`` with common
    ``variance`` — the continuous benchmark ``alpha s^2 / (2 sigma^2)``
    the paper compares Theorem 3 against."""
    if variance <= 0:
        raise PrivacyAccountingError(
            f"variance must be positive, got {variance}"
        )
    if not alpha > 1:
        raise PrivacyAccountingError(f"order must be > 1, got {alpha}")
    return alpha * shift**2 / (2.0 * variance)
