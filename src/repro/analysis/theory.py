"""Closed-form utility predictions and bound comparisons.

The paper's analytical claims — Corollary 2's error decomposition, the
constant-factor gap to continuous Gaussian, and the sensitivity-inflation
comparison against the conditional-rounding baselines — as executable
formulas.  The test suite checks the *implementation* against these
predictions, and the ablation benchmarks use them to annotate measured
numbers with their theoretical expectations.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.accounting.divergences import (
    gaussian_rdp,
    skellam_mechanism_rdp,
    smm_rdp,
)
from repro.accounting.rdp import rdp_to_dp
from repro.errors import ConfigurationError, PrivacyAccountingError
from repro.mechanisms.rounding import DEFAULT_BETA, conditional_rounding_bound


def smm_expected_error(
    values: np.ndarray, lam: float, gamma: float = 1.0
) -> float:
    """Corollary 2's error of dSMM on a concrete dataset (summed MSE).

    ``Err = 2 n lam d + sum_{i,j} p_ij (1 - p_ij)`` in the integer grid,
    divided by ``gamma^2`` to express it in the un-scaled domain.  (The
    restatement below Corollary 2; the first term is the DP noise, the
    second the Bernoulli quantisation variance.)

    Args:
        values: ``(n, d)`` participant data *after* scaling by gamma.
        lam: Per-participant Skellam parameter.
        gamma: The scale parameter, for converting back to raw units.

    Returns:
        The expected total squared error of the estimated (un-scaled) sum.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ConfigurationError(f"expected an (n, d) array, got {values.ndim}-d")
    n, d = values.shape
    fractional = np.abs(values) - np.floor(np.abs(values))
    bernoulli = float(np.sum(fractional * (1.0 - fractional)))
    return (2.0 * lam * n * d + bernoulli) / gamma**2


def smm_gaussian_error_ratio(alpha: float) -> float:
    """Corollary 2 remark: SMM's DP-error multiplier over Gaussian.

    The leading coefficient of SMM's error is ``(1.2 alpha + 1)/2``
    versus the Gaussian mechanism's ``alpha/2`` at the same order:
    the ratio ``(1.2 alpha + 1)/alpha`` tends to 1.2 for large alpha.
    """
    if not alpha > 1:
        raise ConfigurationError(f"alpha must be > 1, got {alpha}")
    return (1.2 * alpha + 1.0) / alpha


@dataclasses.dataclass(frozen=True)
class SensitivityComparison:
    """Side-by-side sensitivities of SMM vs a conditional-rounding baseline.

    Attributes:
        smm_c: SMM's mixture clipping threshold ``gamma^2 Delta_2^2``.
        rounded_l2_squared: The baseline's post-rounding squared L2 bound
            (Eq. (6) squared).
        inflation: Their ratio — the sensitivity penalty the baselines
            pay, which grows like ``d / (4 gamma^2 Delta_2^2)``.
    """

    smm_c: float
    rounded_l2_squared: float

    @property
    def inflation(self) -> float:
        return self.rounded_l2_squared / self.smm_c


def sensitivity_inflation(
    gamma: float,
    dimension: int,
    l2_bound: float = 1.0,
    beta: float = DEFAULT_BETA,
) -> SensitivityComparison:
    """Quantify Section 5's sensitivity-inflation argument.

    Args:
        gamma: Scale parameter.
        dimension: (Padded) data dimension.
        l2_bound: Raw L2 bound ``Delta_2``.
        beta: Conditional-rounding failure probability.

    Returns:
        The comparison; ``inflation >> 1`` is the low-bitwidth regime
        where SMM dominates (Figures 1-3).
    """
    scaled = gamma * l2_bound
    rounded = conditional_rounding_bound(scaled, dimension, beta)
    return SensitivityComparison(
        smm_c=scaled**2, rounded_l2_squared=rounded**2
    )


def noise_variance_ratio(
    alpha: float, gamma: float, dimension: int, l2_bound: float = 1.0
) -> float:
    """Skellam-mechanism over SMM noise variance at equal RDP.

    Solves both mechanisms' RDP formulas for the aggregate noise
    parameter at a common ``tau`` and returns the variance ratio
    (dropping the Skellam mechanism's second-order L1 term, which
    vanishes at large noise):

    ``ratio = (alpha / 2) Delta~_2^2 / ((1.2 alpha + 1)/2 * c)``.
    """
    comparison = sensitivity_inflation(gamma, dimension, l2_bound)
    return (alpha / 2.0) * comparison.rounded_l2_squared / (
        (1.2 * alpha + 1.0) / 2.0 * comparison.smm_c
    )


def epsilon_curve(
    mechanism: str,
    noise_parameter: float,
    gamma: float,
    dimension: int,
    num_participants: int,
    delta: float = 1e-5,
    l2_bound: float = 1.0,
    orders: range = range(2, 101),
) -> float:
    """Single-release epsilon of a mechanism at a given noise level.

    Supports ``"smm"``, ``"skellam"`` and ``"gaussian"`` — enough to plot
    the bound-comparison curves the paper's Section 5 discussion implies.

    Args:
        mechanism: Mechanism short name.
        noise_parameter: Per-participant ``lambda`` (Skellam mechanisms)
            or ``sigma`` (Gaussian).
        gamma: Scale parameter (ignored for Gaussian).
        dimension: Padded dimension.
        num_participants: Contributors per aggregation.
        delta: DP delta.
        l2_bound: Raw L2 bound.
        orders: Renyi orders to optimise over.

    Returns:
        The best converted epsilon.
    """
    if mechanism not in ("gaussian", "smm", "skellam"):
        raise ConfigurationError(f"unknown mechanism {mechanism!r}")
    best = math.inf
    for alpha in orders:
        try:
            if mechanism == "gaussian":
                tau = gaussian_rdp(alpha, l2_bound, noise_parameter)
            elif mechanism == "smm":
                total = num_participants * noise_parameter
                tau = smm_rdp(alpha, (gamma * l2_bound) ** 2, total, 1.0)
            else:
                comparison = sensitivity_inflation(gamma, dimension, l2_bound)
                rounded_l2 = math.sqrt(comparison.rounded_l2_squared)
                rounded_l1 = min(
                    math.sqrt(dimension) * rounded_l2, rounded_l2**2
                )
                tau = skellam_mechanism_rdp(
                    alpha,
                    comparison.rounded_l2_squared,
                    rounded_l1,
                    num_participants * noise_parameter,
                )
            best = min(best, rdp_to_dp(alpha, tau, delta))
        except PrivacyAccountingError:
            continue
    return best
