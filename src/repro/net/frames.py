"""Length-prefixed datagram framing for the stream (TCP) transport.

The sans-I/O sessions (:mod:`repro.secagg.statemachine`) exchange
*datagrams*: byte strings holding one or more concatenated wire frames
that must be delivered as a unit (a client's whole envelope upload, the
server's roster broadcast).  TCP is a byte stream with no such
boundaries, so every datagram on the socket is preceded by a 4-byte
little-endian length prefix::

    0..3   payload length  uint32 (prefix excluded; never zero)
    4..    payload         one or more self-delimiting wire frames

:func:`read_datagram` reassembles exactly one datagram regardless of
how the kernel fragments it (partial reads across frame boundaries are
the normal case, not an error) and polices the boundary conditions a
hostile or broken peer can produce:

* a **zero-length prefix** is a protocol violation (no message is
  empty) and raises :class:`~repro.errors.AggregationError` rather than
  spinning on empty reads;
* an **oversized prefix** — beyond ``max_bytes`` — is rejected *before*
  any allocation, so a 4-byte header cannot commit the server to
  buffering gigabytes;
* a connection closed **mid-datagram** (between the prefix bytes, or
  between prefix and body) raises, because silently truncating a
  protocol message must never look like a clean shutdown;
* a connection closed **at a datagram boundary** returns ``None`` — the
  one legitimate end-of-stream.

The framing deliberately carries no identity: *who* sent a datagram is
the connection's business (the server binds a client id at handshake
and passes it to :meth:`ServerSession.receive
<repro.secagg.statemachine.ServerSession.receive>` — frames can claim
whatever they like, the binding wins).
"""

from __future__ import annotations

import asyncio

from repro.errors import AggregationError

#: Refuse datagrams larger than this many payload bytes (the server's
#: default; a pop-512 round's largest datagram is ~1.2 MiB, so 64 MiB
#: leaves two orders of magnitude of headroom while still bounding a
#: hostile prefix).
MAX_DATAGRAM_BYTES = 64 * 1024 * 1024

#: Bytes in the length prefix.
PREFIX_SIZE = 4


def encode_datagram(payload: bytes) -> bytes:
    """Prefix one datagram for the stream transport.

    Raises:
        AggregationError: For an empty payload (unsendable: the peer
            would reject the zero-length prefix) or one whose length
            overflows the 4-byte prefix.
    """
    size = len(payload)
    if size == 0:
        raise AggregationError("cannot send an empty datagram")
    if size >= 1 << 32:
        raise AggregationError(
            f"datagram of {size} bytes overflows the 4-byte length prefix"
        )
    return size.to_bytes(PREFIX_SIZE, "little") + payload


async def read_datagram(
    reader: asyncio.StreamReader,
    max_bytes: int = MAX_DATAGRAM_BYTES,
) -> bytes | None:
    """Read exactly one length-prefixed datagram from the stream.

    Returns:
        The payload bytes, or ``None`` when the peer closed the
        connection cleanly at a datagram boundary.

    Raises:
        AggregationError: On a zero-length or oversized prefix, or a
            connection closed mid-datagram (truncated prefix or body).
    """
    try:
        prefix = await reader.readexactly(PREFIX_SIZE)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # Clean EOF at a datagram boundary.
        raise AggregationError(
            f"connection closed mid-prefix ({len(error.partial)} of "
            f"{PREFIX_SIZE} bytes)"
        ) from None
    size = int.from_bytes(prefix, "little")
    if size == 0:
        raise AggregationError("malformed datagram: zero-length prefix")
    if size > max_bytes:
        raise AggregationError(
            f"datagram of {size} bytes exceeds the {max_bytes}-byte limit"
        )
    try:
        return await reader.readexactly(size)
    except asyncio.IncompleteReadError as error:
        raise AggregationError(
            f"connection closed mid-datagram ({len(error.partial)} of "
            f"{size} payload bytes)"
        ) from None


async def write_datagram(
    writer: asyncio.StreamWriter, payload: bytes
) -> None:
    """Send one datagram and wait for the transport buffer to drain."""
    writer.write(encode_datagram(payload))
    await writer.drain()
