"""A reproducible swarm of concurrent SecAgg clients.

The swarm is the load generator and the equivalence instrument in one:
``N`` concurrent :func:`~repro.net.client.run_client` coroutines with
configurable straggler delay, a deterministic dropout schedule, chaos
cancellation, and bad-version clients — and a population derived so the
server's aggregate is **bit-identical** to
:func:`~repro.secagg.bonawitz.run_bonawitz` fed the same seed.

The derivation contract (:func:`derive_population`) mirrors
``run_bonawitz`` exactly: one master generator seeded with
``config.seed`` draws the ``(n, d)`` input matrix first, then one
per-client session seed per client in index order.  The aggregate
depends only on those seeds and on *which* clients reach each phase —
never on network arrival order — so a deterministic dropout schedule
makes the real-socket sum reproducible, and
:func:`expected_aggregate` can compute the reference digest without
opening a single socket.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.net.client import ClientPlan, ClientReport, run_client
from repro.resilience.retry import RetryPolicy
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
    AggregationOutcome,
    run_bonawitz,
)
from repro.secagg.field import DEFAULT_FIELD, PrimeField
from repro.secagg.keys import TOY_GROUP, KeyAgreementGroup
from repro.secagg.wire import PROTOCOL_V1
from repro.telemetry import MetricsRegistry


@dataclasses.dataclass(frozen=True)
class SwarmConfig:
    """Shape of one swarm run.

    Attributes:
        clients: Population size ``n`` (protocol indices 1..n).
        dimension: Input vector length ``d``.
        modulus: Aggregation modulus ``m``.
        threshold: Shamir threshold; default ``max(2, clients // 2)``.
        seed: Master seed for inputs and per-client session seeds.
        dropouts: How many clients drop (the *last* ``k`` indices — a
            deterministic schedule, so the run replays in-memory).
        dropout_phase: Phase (0-3) before whose upload the dropouts
            stop; default masked-input, the interesting case (their
            mask seeds must be reconstructed).
        bad_version: How many clients (the first ``k`` of the
            non-dropping prefix) propose an unsupported protocol
            version and get a typed Reject at Hello.
        delay: Fixed per-client sleep before each send, in seconds.
        jitter: Upper bound on a deterministic per-client extra delay
            (drawn from a side generator — never from the master, which
            would desynchronise the seed derivation).
        chaos_cancel: How many client tasks the swarm cancels at a
            deterministic mid-round delay — abnormal teardown injection;
            digests are not comparable in chaos mode.
        mask_prg: Mask PRG backend name (must match the server's).
        client_timeout: Per-delivery wall timeout for every client.
        connect_timeout: Per-dial wall timeout for every client — no
            client hangs forever against a dead address.
        max_retries: Reconnect budget per client; 0 (the default)
            disables retries *and* session resumption, the historical
            behaviour.
        transient_disconnects: How many clients (the first eligible
            indices after the chaos victims) abruptly drop their
            connection at ``transient_phase`` and resume via the Resume
            handshake.  They remain full round participants, so the
            reference digest is unchanged; requires ``max_retries > 0``
            and a server-side ``resume_grace > 0``.
        transient_phase: Phase (1-3) at which transient disconnects
            fire.
        transient_after_upload: Inject the disconnect after the phase's
            upload instead of before its delivery.
    """

    clients: int = 16
    dimension: int = 32
    modulus: int = 2**16
    threshold: int | None = None
    seed: int = 7
    dropouts: int = 0
    dropout_phase: int = ROUND_MASKED_INPUT
    bad_version: int = 0
    delay: float = 0.0
    jitter: float = 0.0
    chaos_cancel: int = 0
    mask_prg: str | None = None
    client_timeout: float = 60.0
    connect_timeout: float = 10.0
    max_retries: int = 0
    transient_disconnects: int = 0
    transient_phase: int = ROUND_MASKED_INPUT
    transient_after_upload: bool = False

    def __post_init__(self) -> None:
        if self.clients < 2:
            raise ConfigurationError(
                f"a swarm needs >= 2 clients, got {self.clients}"
            )
        if not ROUND_ADVERTISE <= self.dropout_phase <= ROUND_UNMASK:
            raise ConfigurationError(
                f"dropout_phase must be in [0, 3], got {self.dropout_phase}"
            )
        if self.dropouts + self.bad_version >= self.clients:
            raise ConfigurationError(
                "dropouts + bad_version must leave at least one live client"
            )
        survivors = self.clients - self.dropouts - self.bad_version
        if self.resolved_threshold > survivors:
            raise ConfigurationError(
                f"threshold {self.resolved_threshold} exceeds the "
                f"{survivors} clients that reach the end of the round"
            )
        if not ROUND_SHARE_KEYS <= self.transient_phase <= ROUND_UNMASK:
            raise ConfigurationError(
                f"transient_phase must be in [1, 3], got "
                f"{self.transient_phase}"
            )
        if self.transient_disconnects:
            if self.max_retries <= 0:
                raise ConfigurationError(
                    "transient_disconnects requires max_retries > 0 — a "
                    "client cannot resume without a reconnect budget"
                )
            eligible = (
                self.clients
                - self.dropouts
                - self.bad_version
                - self.chaos_cancel
            )
            if self.transient_disconnects > eligible:
                raise ConfigurationError(
                    f"transient_disconnects {self.transient_disconnects} "
                    f"exceeds the {eligible} eligible clients"
                )
        if self.connect_timeout <= 0:
            raise ConfigurationError("connect_timeout must be > 0")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")

    @property
    def resolved_threshold(self) -> int:
        """The effective Shamir threshold."""
        if self.threshold is not None:
            return self.threshold
        return max(2, self.clients // 2)

    @property
    def retry_policy(self) -> RetryPolicy | None:
        """The clients' reconnect policy; ``None`` when retries are off."""
        if self.max_retries <= 0:
            return None
        # Short base delay: swarm rounds run on sub-second phase
        # budgets, so a resume must land well inside the grace window.
        return RetryPolicy(
            max_retries=self.max_retries, base_delay=0.05, max_delay=1.0
        )


@dataclasses.dataclass(frozen=True)
class SwarmResult:
    """Client-side view of one swarm round."""

    reports: list[ClientReport]

    def count(self, status: str) -> int:
        """How many clients finished with ``status``."""
        return sum(1 for report in self.reports if report.status == status)

    @property
    def completed(self) -> int:
        return self.count("completed")

    @property
    def retries(self) -> int:
        """Total reconnect attempts across the swarm."""
        return sum(report.retries for report in self.reports)

    @property
    def resumes(self) -> int:
        """Total accepted Resume handshakes across the swarm."""
        return sum(report.resumes for report in self.reports)


def derive_population(config: SwarmConfig) -> tuple[np.ndarray, list[int]]:
    """Inputs and per-client seeds, exactly as ``run_bonawitz`` draws
    them from one master generator (inputs first, then one session seed
    per client in index order)."""
    master = np.random.default_rng(config.seed)
    inputs = master.integers(
        0,
        config.modulus,
        size=(config.clients, config.dimension),
        dtype=np.int64,
    )
    seeds = [
        int(master.integers(0, 2**63 - 1)) for _ in range(config.clients)
    ]
    return inputs, seeds


def dropout_schedule(config: SwarmConfig) -> dict[int, int]:
    """Deterministic dropout map (1-based index -> first dropped phase):
    the last ``config.dropouts`` indices drop at ``dropout_phase``."""
    first = config.clients - config.dropouts + 1
    return {
        index: config.dropout_phase
        for index in range(first, config.clients + 1)
    }


def bad_version_indices(config: SwarmConfig) -> frozenset[int]:
    """Which clients propose an unsupported version: the first
    ``config.bad_version`` indices that are not scheduled dropouts."""
    return frozenset(range(1, config.bad_version + 1))


def transient_indices(config: SwarmConfig) -> frozenset[int]:
    """Which clients inject a transient disconnect+resume: the first
    eligible indices after the chaos victims (so no client is both
    cancelled and resumed)."""
    if not config.transient_disconnects:
        return frozenset()
    immune = set(dropout_schedule(config)) | bad_version_indices(config)
    eligible = [
        index
        for index in range(1, config.clients + 1)
        if index not in immune
    ]
    start = config.chaos_cancel
    return frozenset(
        eligible[start:start + config.transient_disconnects]
    )


def client_plans(config: SwarmConfig) -> list[ClientPlan]:
    """The full per-client schedule for one round."""
    _, seeds = derive_population(config)
    dropouts = dropout_schedule(config)
    rejects = bad_version_indices(config)
    transients = transient_indices(config)
    side = np.random.default_rng((config.seed, 0xD3))
    plans = []
    for index in range(1, config.clients + 1):
        jitter = float(side.uniform(0, config.jitter)) if config.jitter else 0.0
        plans.append(
            ClientPlan(
                index=index,
                seed=seeds[index - 1],
                delay=config.delay + jitter,
                drop_at_phase=dropouts.get(index),
                version=PROTOCOL_V1 + 1
                if index in rejects
                else PROTOCOL_V1,
                disconnect_at_phase=config.transient_phase
                if index in transients
                else None,
                disconnect_after_upload=config.transient_after_upload,
            )
        )
    return plans


def expected_aggregate(
    config: SwarmConfig,
    group: KeyAgreementGroup = TOY_GROUP,
    field: PrimeField = DEFAULT_FIELD,
) -> AggregationOutcome:
    """The reference outcome, computed entirely in memory.

    Replays the swarm's schedule through ``run_bonawitz`` with the same
    master generator (so the same inputs and session seeds).  Clients
    rejected at Hello never enter the roster — exactly a round-0
    dropout — so they map to ``dropouts={index: 0}``.
    """
    master = np.random.default_rng(config.seed)
    inputs = master.integers(
        0,
        config.modulus,
        size=(config.clients, config.dimension),
        dtype=np.int64,
    )
    dropouts = dict(dropout_schedule(config))
    for index in bad_version_indices(config):
        dropouts[index] = ROUND_ADVERTISE
    return run_bonawitz(
        inputs,
        config.modulus,
        config.resolved_threshold,
        rng=master,
        group=group,
        dropouts=dropouts,
        field=field,
        mask_prg=config.mask_prg,
    )


def expected_digest(config: SwarmConfig) -> str:
    """SHA-256 digest of the reference aggregate — the value the
    server's :attr:`~repro.net.server.NetRoundResult.digest` must equal
    for the same seeds and schedule."""
    outcome = expected_aggregate(config)
    return hashlib.sha256(outcome.modular_sum.tobytes()).hexdigest()


async def run_swarm(
    host: str,
    port: int,
    config: SwarmConfig,
    group: KeyAgreementGroup = TOY_GROUP,
    field: PrimeField = DEFAULT_FIELD,
    metrics: MetricsRegistry | None = None,
) -> SwarmResult:
    """Run one full swarm round against a listening server.

    Every client runs as its own task on the current loop.  Chaos mode
    cancels ``config.chaos_cancel`` of the would-complete clients at
    staggered deterministic delays — the server must treat the
    vanishing connections as evictions and still finish the round
    (provided the threshold holds).  Transient-disconnect clients drop
    and resume mid-round but remain full participants, so the reference
    digest still applies.
    """
    inputs, _ = derive_population(config)
    plans = client_plans(config)
    retry = config.retry_policy
    tasks = [
        asyncio.ensure_future(
            run_client(
                host,
                port,
                plan,
                inputs[plan.index - 1],
                config.modulus,
                config.resolved_threshold,
                group=group,
                field=field,
                mask_prg=config.mask_prg,
                timeout=config.client_timeout,
                connect_timeout=config.connect_timeout,
                retry=retry,
                metrics=metrics,
            )
        )
        for plan in plans
    ]
    if config.chaos_cancel:
        victims = _chaos_victims(config)
        asyncio.ensure_future(_chaos(tasks, victims))
    gathered = await asyncio.gather(*tasks, return_exceptions=True)
    reports = []
    for plan, outcome in zip(plans, gathered):
        if isinstance(outcome, asyncio.CancelledError):
            reports.append(
                ClientReport(
                    index=plan.index,
                    status="cancelled",
                    detail="chaos-cancelled mid-round",
                )
            )
        elif isinstance(outcome, BaseException):
            raise outcome
        else:
            reports.append(outcome)
    return SwarmResult(reports=reports)


def _chaos_victims(config: SwarmConfig) -> list[int]:
    """Deterministic choice of chaos targets: the first eligible
    (non-dropout, non-rejected) indices."""
    immune = set(dropout_schedule(config)) | bad_version_indices(config)
    eligible = [
        index
        for index in range(1, config.clients + 1)
        if index not in immune
    ]
    return eligible[: config.chaos_cancel]


async def _chaos(tasks: list[asyncio.Task], victims: list[int]) -> None:
    # Stagger the cancellations so they land in different phases.
    for position, index in enumerate(sorted(victims)):
        await asyncio.sleep(0.02 * (position + 1))
        task = tasks[index - 1]
        if not task.done():
            task.cancel()
