"""The real-socket SecAgg aggregation server.

This is the third transport over the sans-I/O protocol core — after the
synchronous in-memory loop (:func:`repro.secagg.bonawitz.run_bonawitz`)
and the simulated-clock mailbox
(:class:`repro.simulation.rounds.AsyncSecAggRound`) — and the first one
whose clients are *real peers on real sockets*: an asyncio TCP listener
drives one :class:`~repro.secagg.statemachine.ServerSession` per round,
with wall-clock phase deadlines doing the job the simulated clock's
``phase_timeout`` does in the simulator.

Transport rules (everything the protocol core deliberately does not
decide):

* **Identity is connection-bound.**  A connection's first datagram must
  open with :class:`~repro.secagg.wire.Hello`; the Hello's sender index
  becomes the connection's bound client id (first come, first bound —
  a duplicate id is refused with a typed
  :class:`~repro.secagg.wire.Reject`).  Every subsequent datagram is
  ingested as ``session.receive(data, sender=<bound id>)``, so a frame
  claiming a different origin raises inside the core and the connection
  is evicted — one socket can never impersonate another.
* **Phases close on the wall clock.**  A phase ends at the earlier of
  "every expected client delivered" and ``phase_timeout`` seconds;
  stragglers are treated as dropouts, exactly like the simulator.
* **Disconnects are evictions, not hangs** — unless a **grace window**
  is configured.  With ``resume_grace == 0`` a peer that vanishes
  mid-phase (or whose socket is already gone at phase start) is removed
  from the waiting set immediately; Bonawitz dropout tolerance does the
  rest.  With ``resume_grace > 0`` the dropped peer is *parked*: it
  keeps its place in the round until it reconnects with a
  :class:`~repro.secagg.wire.Resume` (undelivered datagrams are then
  replayed from the session's buffer), its grace expires, or the phase
  deadline passes.  A resumed peer may re-send what it already sent
  (byte-identical redelivery is idempotent) but never *different*
  bytes for the same phase — that is answered with a typed Reject and
  eviction (the at-most-once guard).
* **Late traffic is ignored and counted**, mirroring the mailbox
  transport's ``message-ignored`` semantics.
* **Rounds are durable when a journal is configured.**  The server
  journals the cohort at round start and every phase's ingested
  uploads at phase commit; a killed-and-restarted server replays the
  committed uploads through a fresh session (the crypto server draws
  no randomness, so the reconstruction is byte-identical) and resumes
  the round under the grace window — or cleanly aborts it.  Epsilon
  charges are idempotent by round id, so a crash can never
  double-charge the ledger.

Telemetry lands in the *same* metric families the simulator reports
(``secagg_phase_wall_duration_seconds``, ``secagg_rounds_total``,
``secagg_wire_bytes_total``, ...), plus a handful of ``net_*`` families
only a real listener has (connections, evictions, round wall time); the
registry is served live over HTTP ``GET /metrics``
(:mod:`repro.net.http`), so simulated and real runs share one metrics
catalog and one scrape format.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import hashlib

import numpy as np

from repro.errors import AggregationError, ConfigurationError, ConflictError
from repro.net.frames import MAX_DATAGRAM_BYTES, read_datagram, write_datagram
from repro.net.http import start_metrics_endpoint
from repro.resilience.journal import (
    DurableLedger,
    InterruptedRound,
    RoundJournal,
    recover_journal,
)
from repro.secagg.field import DEFAULT_FIELD, PrimeField
from repro.secagg.keys import TOY_GROUP, KeyAgreementGroup
from repro.secagg.statemachine import PHASE_TAGS, ServerSession
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
)
from repro.secagg.wire import (
    Hello,
    Reject,
    Resume,
    Welcome,
    WireStats,
    decode_frames,
    encode_message,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import time_phase


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Configuration of one :class:`SecAggServer`.

    Attributes:
        host: Interface to bind (default loopback).
        port: TCP port (0 = ephemeral; read it back from
            :attr:`SecAggServer.port` after start).
        metrics_port: Port for the HTTP ``/metrics`` endpoint (0 =
            ephemeral, ``None`` = no endpoint).
        modulus: Aggregation modulus ``m``.
        dimension: Vector length ``d`` every client must upload.
        threshold: Shamir reconstruction threshold ``t``.
        cohort_size: Connections to admit into each round; the round
            starts once this many clients have completed the handshake
            (or ``join_timeout`` expires after the first join).
        rounds: Rounds to serve before :meth:`SecAggServer.serve_rounds`
            returns.
        phase_timeout: Wall seconds the server waits per phase before
            evicting the stragglers and moving on.
        join_timeout: Wall seconds after the first handshake to wait
            for the rest of the cohort.
        mask_prg: Mask PRG backend name for the round's negotiated
            header.
        group: DH group — defaults to the fast 61-bit toy group, the
            same default the in-memory drivers use.
        max_datagram_bytes: Upload size bound enforced by the framing
            layer, per datagram.
        resume_grace: Wall seconds a dropped connection is *parked*
            (kept in the round, resumable) before eviction.  ``0``
            keeps the historical behavior: disconnect == instant
            eviction.
        journal_path: Path of the append-only round journal.  ``None``
            disables durability; with a path, rounds checkpoint at
            every phase commit and a restarted server recovers (or
            cleanly aborts) the interrupted round.
        round_epsilon: Epsilon charged to the durable ledger per
            *completed* round (idempotent by round id; aborted rounds
            charge nothing).
    """

    host: str = "127.0.0.1"
    port: int = 0
    metrics_port: int | None = 0
    modulus: int = 2**16
    dimension: int = 32
    threshold: int = 2
    cohort_size: int = 4
    rounds: int = 1
    phase_timeout: float = 30.0
    join_timeout: float = 30.0
    mask_prg: str | None = None
    group: KeyAgreementGroup = TOY_GROUP
    field: PrimeField = DEFAULT_FIELD
    max_datagram_bytes: int = MAX_DATAGRAM_BYTES
    resume_grace: float = 0.0
    journal_path: str | None = None
    round_epsilon: float = 0.0

    def __post_init__(self) -> None:
        if self.cohort_size < 2:
            raise ConfigurationError(
                f"cohort_size must be >= 2, got {self.cohort_size}"
            )
        if not 2 <= self.threshold <= self.cohort_size:
            raise ConfigurationError(
                f"threshold must lie in [2, {self.cohort_size}], "
                f"got {self.threshold}"
            )
        if self.phase_timeout <= 0 or self.join_timeout <= 0:
            raise ConfigurationError("timeouts must be > 0")
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        if self.resume_grace < 0:
            raise ConfigurationError("resume_grace must be >= 0")
        if self.round_epsilon < 0:
            raise ConfigurationError("round_epsilon must be >= 0")


@dataclasses.dataclass(frozen=True)
class NetRoundResult:
    """Outcome of one served round.

    Attributes:
        index: Round number (0-based).
        modular_sum: The recovered aggregate, or ``None`` if aborted.
        included: ``U2`` — clients whose input made the aggregate.
        dropped: Round participants that dropped, straggled, or were
            evicted before their input made it in.
        evicted: Subset of ``dropped`` the *transport* removed
            (disconnects, spoofed frames, protocol violations).
        rejected: Clients refused at Hello, with the refusal reason.
        aborted: Abort reason, or ``None`` on success.
        wall_duration: Wall seconds from round start to completion.
        wire: The round's byte/message ledger.
        round_id: The durable round identity (journal/ledger key) —
            distinct from ``index`` after a recovery, since the
            recovered round keeps its pre-crash id.
        recovered: True when this round was reconstructed from the
            journal after a restart.
    """

    index: int
    modular_sum: np.ndarray | None
    included: frozenset[int]
    dropped: frozenset[int]
    evicted: frozenset[int]
    rejected: dict[int, str]
    aborted: str | None
    wall_duration: float
    wire: WireStats | None
    round_id: int = 0
    recovered: bool = False

    @property
    def digest(self) -> str | None:
        """SHA-256 hex digest of the aggregate (``None`` if aborted) —
        directly comparable with the in-memory transports' digests."""
        if self.modular_sum is None:
            return None
        return hashlib.sha256(self.modular_sum.tobytes()).hexdigest()


class _Connection:
    """One accepted, handshake-bound client connection."""

    __slots__ = ("client", "writer")

    def __init__(self, client: int, writer: asyncio.StreamWriter) -> None:
        self.client = client
        self.writer = writer

    def close(self) -> None:
        with contextlib.suppress(ConnectionError, OSError, RuntimeError):
            self.writer.close()


class SecAggServer:
    """Serve SecAgg rounds to real TCP clients.

    Usage (one event loop; the swarm may share it or live in another
    process entirely)::

        server = SecAggServer(ServerConfig(cohort_size=16, threshold=10))
        await server.start()
        results = await server.serve_rounds()
        await server.stop()

    Args:
        config: The server configuration.
        metrics: Registry to report into (and to serve on ``/metrics``);
            a private one is created by default.
    """

    def __init__(
        self,
        config: ServerConfig,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.results: list[NetRoundResult] = []
        # Header for pre-round Reject notices (duplicate ids); rounds
        # negotiate their own header via their ServerSession.
        self._reject_header = ServerSession(
            config.modulus, config.dimension, config.threshold,
            config.field, config.group, config.mask_prg,
        ).header
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._inbox: asyncio.Queue = asyncio.Queue()
        self._connections: dict[int, _Connection] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._pending_joins: dict[int, bytes] = {}
        self._stop_requested = False
        #: Dropped-but-resumable clients -> grace deadline (loop time).
        self._parked: dict[int, float] = {}
        #: The in-flight round's shared state (id, roster, session, ...)
        #: consulted by resume handling; ``None`` between rounds.
        self._round_state: dict | None = None
        self._journal: RoundJournal | None = None
        self.ledger = DurableLedger()
        self._next_round_id = 0
        self._interrupted: InterruptedRound | None = None
        if config.journal_path is not None:
            recovery = recover_journal(config.journal_path)
            self._journal = RoundJournal(config.journal_path)
            self.ledger = DurableLedger(self._journal, recovery.charged)
            self._next_round_id = recovery.next_round_id
            self._interrupted = recovery.interrupted
        # Same family names (and help) the simulator's rounds report
        # into, so /metrics holds one catalog for both worlds.
        self._m_wall_phase = self.metrics.histogram(
            "secagg_phase_wall_duration_seconds",
            "Wall-clock compute seconds per protocol phase.",
        )
        self._m_rounds = self.metrics.counter(
            "secagg_rounds_total",
            "Secure-aggregation rounds finished, by outcome.",
        )
        self._m_timeouts = self.metrics.counter(
            "secagg_phase_timeouts_total",
            "Phases the server closed at the deadline, by phase.",
        )
        self._m_dropped = self.metrics.counter(
            "secagg_clients_dropped_total",
            "Cohort members that dropped or straggled out, by phase.",
        )
        self._m_ignored = self.metrics.counter(
            "secagg_messages_ignored_total",
            "Datagrams ignored: stragglers, duplicates, unknown senders.",
        )
        self._m_wire_messages = self.metrics.counter(
            "secagg_wire_messages_total",
            "Protocol messages on the wire, by phase and direction.",
        )
        self._m_wire_bytes = self.metrics.counter(
            "secagg_wire_bytes_total",
            "Serialized bytes on the wire, by phase and direction.",
        )
        # Families only a real listener has.
        self._m_connections = self.metrics.counter(
            "net_connections_total",
            "TCP connections by handshake outcome.",
        )
        self._m_evictions = self.metrics.counter(
            "net_evictions_total",
            "Clients evicted from a round by the transport, by reason.",
        )
        self._m_round_wall = self.metrics.histogram(
            "net_round_wall_seconds",
            "Wall seconds per served round, handshake to aggregate.",
        )
        self._m_resume = self.metrics.counter(
            "net_resume_total",
            "Resume handshakes by outcome.",
        )
        self._m_recovery = self.metrics.counter(
            "round_recovery_total",
            "Journal recoveries of interrupted rounds, by outcome.",
        )

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the TCP listener (and the ``/metrics`` endpoint)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        if self.config.metrics_port is not None:
            self._metrics_server = await start_metrics_endpoint(
                self.metrics, host=self.config.host,
                port=self.config.metrics_port,
            )

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ConfigurationError("the server has not been started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> int | None:
        """The bound ``/metrics`` port, or ``None`` when disabled."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop listening and drop every open connection."""
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = self._metrics_server = None
        for connection in list(self._connections.values()):
            connection.close()
        self._connections.clear()
        # Drain the per-connection reader tasks: the closes above feed
        # them EOF, so they exit on their own.  Waiting (rather than
        # cancelling) matters on Python 3.11, where cancelling a
        # streams-server handler task makes the protocol's completion
        # callback itself raise and spam the loop's exception handler.
        tasks = [
            task for task in self._handler_tasks
            if task is not asyncio.current_task()
        ]
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=2.0)
            for task in pending:  # pragma: no cover - stuck handler
                task.cancel()
            if pending:  # pragma: no cover
                await asyncio.wait(pending, timeout=1.0)
        if self._journal is not None:
            self._journal.close()

    async def crash(self) -> None:
        """Abandon everything immediately — the in-process ``kill -9``.

        Closes the listeners and every connection with no round
        wind-down and no journal ``round-end`` record, leaving exactly
        the on-disk state a killed process would: committed phases
        only.  A new :class:`SecAggServer` over the same journal path
        recovers from it.  The task driving :meth:`serve_rounds` must
        be cancelled by the caller — a real ``kill -9`` takes it down
        too.
        """
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = self._metrics_server = None
        for connection in list(self._connections.values()):
            connection.close()
        self._connections.clear()
        if self._journal is not None:
            self._journal.close()

    def request_stop(self) -> None:
        """Ask the server to stop after draining the in-flight round.

        Safe to call from a signal handler on the loop thread: sets the
        stop flag and wakes the round driver, which finishes the
        current round (phases stay deadline-bounded) and then returns
        from :meth:`serve_rounds` instead of gathering the next cohort.
        """
        if not self._stop_requested:
            self._stop_requested = True
            self._inbox.put_nowait(("stop", 0, b""))

    async def __aenter__(self) -> "SecAggServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        limit = self.config.max_datagram_bytes
        try:
            handshake = await asyncio.wait_for(
                read_datagram(reader, limit), self.config.join_timeout
            )
        except (AggregationError, asyncio.TimeoutError, ConnectionError):
            self._m_connections.labels(outcome="malformed-handshake").inc()
            writer.close()
            return
        if handshake is None:
            self._m_connections.labels(outcome="malformed-handshake").inc()
            writer.close()
            return
        client = self._bound_client(handshake)
        kind = "join"
        if client is None:
            resume = self._bound_resume(handshake)
            if resume is not None:
                client, kind = resume.sender, "resume"
        if client is None:
            self._m_connections.labels(outcome="malformed-handshake").inc()
            writer.close()
            return
        if client in self._connections:
            self._m_connections.labels(outcome="duplicate-id").inc()
            await self._refuse(
                writer, client,
                f"client id {client} is already bound to another connection",
            )
            return
        connection = _Connection(client, writer)
        self._connections[client] = connection
        self._m_connections.labels(outcome="accepted").inc()
        await self._inbox.put((kind, client, handshake))
        try:
            while True:
                payload = await read_datagram(reader, limit)
                if payload is None:
                    break
                await self._inbox.put(("data", client, payload))
        except (AggregationError, ConnectionError, OSError):
            pass  # Mid-datagram disconnect or frame abuse: same eviction.
        finally:
            if self._connections.get(client) is connection:
                del self._connections[client]
            await self._inbox.put(("gone", client, b""))
            connection.close()

    @staticmethod
    def _bound_client(handshake: bytes) -> int | None:
        """The client id a handshake datagram binds, or ``None``.

        The first frame must be a :class:`~repro.secagg.wire.Hello` with
        a positive sender index; the full datagram (Hello + Advertise)
        is later fed to the session verbatim.
        """
        try:
            frames = decode_frames(handshake)
        except AggregationError:
            return None
        if not frames or not isinstance(frames[0][1], Hello):
            return None
        sender = frames[0][1].sender
        return sender if sender > 0 else None

    @staticmethod
    def _bound_resume(handshake: bytes) -> Resume | None:
        """The :class:`~repro.secagg.wire.Resume` a handshake carries.

        A resume handshake is exactly one Resume frame with a positive
        sender; anything else is not a resume (and, if it is not a
        Hello either, the connection is refused as malformed).
        """
        try:
            frames = decode_frames(handshake)
        except AggregationError:
            return None
        if len(frames) != 1 or not isinstance(frames[0][1], Resume):
            return None
        message = frames[0][1]
        return message if message.sender > 0 else None

    async def _refuse(
        self, writer: asyncio.StreamWriter, client: int, reason: str
    ) -> None:
        """Answer a doomed handshake with a typed Reject, then close."""
        with contextlib.suppress(ConnectionError, OSError):
            await write_datagram(
                writer,
                encode_message(
                    Reject(client=client, reason=reason),
                    self._reject_header,
                ),
            )
        writer.close()

    # -- round driving ----------------------------------------------------

    async def serve_rounds(self) -> list[NetRoundResult]:
        """Serve ``config.rounds`` rounds; returns their results.

        A journal-recovered round (left in flight by a crash) is driven
        first and counts toward the round budget.  A
        :meth:`request_stop` finishes the in-flight round, then returns
        early.
        """
        index = len(self.results)
        if self._interrupted is not None:
            interrupted, self._interrupted = self._interrupted, None
            result = await self._recover_round(index, interrupted)
            if result is not None:
                self.results.append(result)
                index += 1
        while index < self.config.rounds and not self._stop_requested:
            result = await self._run_round(index)
            if result is None:
                break
            self.results.append(result)
            index += 1
        return self.results

    def _build_session(self) -> ServerSession:
        return ServerSession(
            self.config.modulus,
            self.config.dimension,
            self.config.threshold,
            self.config.field,
            self.config.group,
            self.config.mask_prg,
            metrics=self.metrics,
            resumable=True,
        )

    def _journal_params(self) -> dict:
        """The config fingerprint a journaled round must match to be
        reconstructible by this server."""
        return {
            "modulus": self.config.modulus,
            "dimension": self.config.dimension,
            "threshold": self.config.threshold,
            "version": self._reject_header.version,
            "mask_prg": self._reject_header.mask_prg,
        }

    async def _run_round(self, index: int) -> NetRoundResult | None:
        joins = await self._gather_cohort()
        if not joins and self._stop_requested:
            return None
        round_id = self._next_round_id
        self._next_round_id += 1
        session = self._build_session()
        if self._journal is not None:
            self._journal.round_start(
                round_id, sorted(joins), self._journal_params()
            )
        await self._send_welcomes(session, round_id, joins)
        return await self._drive(
            index=index,
            round_id=round_id,
            session=session,
            roster=frozenset(joins),
            joins=joins,
            start_phase=ROUND_ADVERTISE,
            recovered=False,
        )

    async def _recover_round(
        self, index: int, interrupted: InterruptedRound
    ) -> NetRoundResult | None:
        """Resume — or cleanly abort — the round a crash left in flight.

        Replaying the journaled phase uploads through a fresh session
        reconstructs the pre-crash server state byte-identically (the
        crypto server draws no randomness), including the replay buffer
        the returning clients will be served from.  The whole roster
        starts parked under the grace window; clients reconnect with
        Resume and the round continues from the first uncommitted
        phase.  If nothing was committed, the config changed, or there
        is no grace window to wait in, the round is aborted instead —
        with no charge, since the ledger only ever charges completed
        rounds.
        """
        round_id = interrupted.round_id
        session = self._build_session()
        recoverable = bool(interrupted.phases) and (
            interrupted.params == self._journal_params()
        )
        if recoverable:
            try:
                for _, uploads in interrupted.phases:
                    for client in sorted(uploads):
                        session.receive(uploads[client], sender=client)
                    session.advance()
            except AggregationError:
                recoverable = False
        if not recoverable or self.config.resume_grace <= 0:
            if self._journal is not None:
                self._journal.round_end(round_id, "aborted", None)
            self._m_recovery.labels(outcome="aborted").inc()
            self._m_rounds.labels(outcome="aborted").inc()
            return None
        self._m_recovery.labels(outcome="resumed").inc()
        loop = asyncio.get_running_loop()
        for client in session.expected:
            self._parked[client] = loop.time() + self.config.resume_grace
        return await self._drive(
            index=index,
            round_id=round_id,
            session=session,
            roster=frozenset(interrupted.cohort),
            joins={},
            start_phase=session.phase,
            recovered=True,
        )

    async def _send_welcomes(
        self, session: ServerSession, round_id: int, joins: dict[int, bytes]
    ) -> None:
        """Announce the durable round id to every gathered cohort member."""
        for client in sorted(joins):
            connection = self._connections.get(client)
            if connection is None:
                continue
            try:
                await write_datagram(
                    connection.writer,
                    encode_message(
                        Welcome(client=client, round_id=round_id),
                        session.header,
                    ),
                )
            except (AggregationError, ConnectionError, OSError):
                pass  # the reader task's "gone" event handles the drop

    async def _drive(
        self,
        *,
        index: int,
        round_id: int,
        session: ServerSession,
        roster: frozenset[int],
        joins: dict[int, bytes],
        start_phase: int,
        recovered: bool,
    ) -> NetRoundResult:
        loop = asyncio.get_running_loop()
        evicted: set[int] = set()
        # Snapshot the cohort's connection *objects*: by round end the
        # same client ids may already be bound to next-round
        # connections, and cleanup must not close those.  Resumed
        # connections are added as they are accepted.
        round_connections: dict[int, _Connection] = {
            client: self._connections[client]
            for client in roster
            if client in self._connections
        }
        self._round_state = {
            "round_id": round_id,
            "roster": roster,
            "session": session,
            "connections": round_connections,
        }
        started = loop.time()
        aborted: str | None = None
        with time_phase("round", wall_histogram=self._m_round_wall):
            expected = set(session.expected) if recovered else set(joins)
            for phase in range(start_phase, ROUND_UNMASK + 1):
                tag = PHASE_TAGS[phase]
                wire_before = session.stats.snapshot()
                with time_phase(
                    tag,
                    wall_histogram=self._m_wall_phase.labels(phase=tag),
                ):
                    if phase == ROUND_ADVERTISE:
                        datagrams = dict(joins)
                    else:
                        datagrams = await self._collect(tag, expected, evicted)
                    committed: dict[int, bytes] = {}
                    for client in sorted(datagrams):
                        if await self._ingest(
                            session, client, datagrams[client], tag, evicted
                        ):
                            committed[client] = datagrams[client]
                    try:
                        deliveries = session.advance()
                    except AggregationError as error:
                        aborted = str(error)
                        break
                    if self._journal is not None:
                        self._journal.phase_commit(round_id, tag, committed)
                    if phase != ROUND_UNMASK:
                        await self._deliver(deliveries, tag, evicted)
                    expected = set(session.expected)
                self._wire_delta(session, wire_before, tag)
        wall_duration = loop.time() - started
        if aborted is None:
            included = session.included
            modular_sum = session.modular_sum
            self._m_rounds.labels(outcome="completed").inc()
        else:
            included = frozenset()
            modular_sum = None
            self._m_rounds.labels(outcome="aborted").inc()
        digest = (
            hashlib.sha256(modular_sum.tobytes()).hexdigest()
            if modular_sum is not None
            else None
        )
        if self._journal is not None:
            self._journal.round_end(
                round_id,
                "completed" if aborted is None else "aborted",
                digest,
            )
        if aborted is None:
            # Exactly one charge per completed round id; an aborted
            # round charges nothing (its noise never shipped).
            self.ledger.charge(round_id, self.config.round_epsilon)
        self._round_state = None
        self._parked.clear()
        self._close_round_connections(list(round_connections.values()))
        return NetRoundResult(
            index=index,
            modular_sum=modular_sum,
            included=included,
            dropped=frozenset(roster) - included,
            evicted=frozenset(evicted),
            rejected=dict(session.rejections),
            aborted=aborted,
            wall_duration=wall_duration,
            wire=session.stats,
            round_id=round_id,
            recovered=recovered,
        )

    async def _gather_cohort(self) -> dict[int, bytes]:
        """Admit handshakes until the cohort is full (or times out)."""
        loop = asyncio.get_running_loop()
        joins: dict[int, bytes] = {}
        while self._pending_joins and len(joins) < self.config.cohort_size:
            client, handshake = self._pending_joins.popitem()
            if client in self._connections:
                joins[client] = handshake
        deadline = (
            loop.time() + self.config.join_timeout if joins else None
        )
        while len(joins) < self.config.cohort_size:
            if deadline is None:
                event = await self._inbox.get()
            else:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    event = await asyncio.wait_for(
                        self._inbox.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
            kind, client, payload = event
            if kind == "join":
                joins[client] = payload
                if deadline is None:
                    deadline = loop.time() + self.config.join_timeout
            elif kind == "gone":
                joins.pop(client, None)
            elif kind == "resume":
                # No round is in flight; whatever this client wants to
                # resume is gone.
                await self._reject_resume(
                    client, "no round in flight", outcome="rejected"
                )
            elif kind == "stop":
                break
            else:
                self._m_ignored.inc()
        return joins

    async def _collect(
        self, tag: str, expected: set[int], evicted: set[int]
    ) -> dict[int, bytes]:
        """Gather one phase's datagrams until complete or deadline.

        With no grace window, members whose connection is gone (at
        phase start or mid-phase) are evicted immediately — a
        disconnect must never leave the round waiting out the full
        deadline for a peer that cannot answer.  With ``resume_grace >
        0`` they are parked instead: still counted as pending until
        they resume, their grace expires (eviction, reason
        ``grace-expired``), or the phase deadline passes.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.phase_timeout
        grace = self.config.resume_grace
        collected: dict[int, bytes] = {}
        pending = {
            client
            for client in expected
            if client not in evicted
        }
        for client in sorted(pending):
            if client not in self._connections and client not in self._parked:
                if grace > 0:
                    self._park(client)
                else:
                    self._evict(client, tag, evicted, reason="disconnect")
        pending -= evicted
        while pending - set(collected):
            now = loop.time()
            if now >= deadline:
                self._expire(tag, pending - set(collected))
                break
            for client in [
                parked
                for parked, until in self._parked.items()
                if until <= now
            ]:
                del self._parked[client]
                if client in pending and client not in collected:
                    self._evict(client, tag, evicted, reason="grace-expired")
            pending -= evicted
            if not pending - set(collected):
                break
            # Wake at the earliest of the phase deadline and the next
            # grace expiry among peers the phase is still waiting on.
            wake = min(
                [deadline]
                + [
                    until
                    for parked, until in self._parked.items()
                    if parked in pending and parked not in collected
                ]
            )
            try:
                kind, client, payload = await asyncio.wait_for(
                    self._inbox.get(), max(wake - now, 0.001)
                )
            except asyncio.TimeoutError:
                continue
            if kind == "stop":
                continue  # flag is set; finish draining this round first
            if kind == "join":
                state = self._round_state
                if (
                    state is not None
                    and client in state["roster"]
                    and client not in evicted
                    and client not in state["session"].rejections
                ):
                    # A current-round member re-handshaking from
                    # scratch (it lost its connection before learning
                    # the round id): resume with a full replay.
                    await self._accept_resume(client, 0, tag, evicted)
                else:
                    # A connection for the *next* round; park it.
                    self._pending_joins[client] = payload
                continue
            if kind == "resume":
                await self._handle_resume(client, payload, tag, evicted)
                continue
            if kind == "gone":
                if client in pending and client not in collected:
                    if grace > 0:
                        self._park(client)
                    else:
                        self._evict(client, tag, evicted, reason="disconnect")
                        pending.discard(client)
                continue
            if client not in pending:
                self._m_ignored.inc()
                continue
            state = self._round_state
            if state is not None and state["session"].already_ingested(
                client, payload
            ):
                # A resumed client re-sending an upload a *previous*
                # phase already committed; drop it before it can shadow
                # the upload this phase is actually waiting for.
                self._m_ignored.inc()
                continue
            if client in collected:
                if bytes(payload) == bytes(collected[client]):
                    # Idempotent redelivery after a resume.
                    self._m_ignored.inc()
                else:
                    # The at-most-once guard, in-phase flavour: the
                    # same client re-submitting *different* bytes can
                    # never be honoured.
                    await self._conflict_evict(
                        client,
                        tag,
                        evicted,
                        f"client {client} re-submitted different bytes "
                        f"for the {tag} phase",
                    )
                    collected.pop(client, None)
                    pending.discard(client)
                continue
            collected[client] = payload
        return collected

    def _park(self, client: int) -> None:
        """Hold a dropped client under the resume grace window."""
        if client not in self._parked:
            loop = asyncio.get_running_loop()
            self._parked[client] = loop.time() + self.config.resume_grace

    async def _handle_resume(
        self, client: int, payload: bytes, tag: str, evicted: set[int]
    ) -> None:
        """Vet one Resume handshake against the in-flight round."""
        state = self._round_state
        try:
            frames = decode_frames(payload)
        except AggregationError:
            frames = []
        message = frames[0][1] if frames else None
        if not isinstance(message, Resume):
            await self._reject_resume(
                client, "malformed resume", outcome="rejected"
            )
            return
        if state is None or message.round_id != state["round_id"]:
            await self._reject_resume(
                client,
                f"stale round id {message.round_id}",
                outcome="rejected",
            )
            return
        if client in evicted or client in state["session"].rejections:
            await self._reject_resume(
                client,
                "no longer a participant of this round",
                outcome="expired",
            )
            return
        if client not in state["roster"]:
            await self._reject_resume(
                client,
                "not a member of this round's cohort",
                outcome="rejected",
            )
            return
        await self._accept_resume(client, message.deliveries, tag, evicted)

    async def _accept_resume(
        self, client: int, deliveries_seen: int, tag: str, evicted: set[int]
    ) -> None:
        """Unpark a resumed client and replay what it has not seen."""
        state = self._round_state
        assert state is not None
        session: ServerSession = state["session"]
        self._parked.pop(client, None)
        connection = self._connections.get(client)
        if connection is None:
            # It vanished again between the handshake and now; park it
            # and let the grace machinery decide.
            if self.config.resume_grace > 0:
                self._park(client)
            else:
                self._evict(client, tag, evicted, reason="disconnect")
            return
        state["connections"][client] = connection
        try:
            await write_datagram(
                connection.writer,
                encode_message(
                    Welcome(client=client, round_id=state["round_id"]),
                    session.header,
                ),
            )
            for replayed in session.replay_for(client, deliveries_seen):
                await write_datagram(connection.writer, replayed)
        except (AggregationError, ConnectionError, OSError):
            if self.config.resume_grace > 0:
                self._park(client)
            else:
                self._evict(client, tag, evicted, reason="disconnect")
            return
        self._m_resume.labels(outcome="accepted").inc()

    async def _reject_resume(
        self, client: int, reason: str, outcome: str
    ) -> None:
        """Answer a doomed resume with a typed Reject, then close."""
        self._m_resume.labels(outcome=outcome).inc()
        connection = self._connections.get(client)
        if connection is None:
            return
        with contextlib.suppress(AggregationError, ConnectionError, OSError):
            await write_datagram(
                connection.writer,
                encode_message(
                    Reject(client=client, reason=reason),
                    self._reject_header,
                ),
            )
        connection.close()

    async def _conflict_evict(
        self, client: int, tag: str, evicted: set[int], reason: str
    ) -> None:
        """At-most-once violation: typed Reject, then eviction."""
        connection = self._connections.get(client)
        if connection is not None:
            with contextlib.suppress(
                AggregationError, ConnectionError, OSError
            ):
                await write_datagram(
                    connection.writer,
                    encode_message(
                        Reject(client=client, reason=reason),
                        self._reject_header,
                    ),
                )
        self._evict(client, tag, evicted, reason="conflict")

    def _expire(self, tag: str, missing: set[int]) -> None:
        self._m_timeouts.labels(phase=tag).inc()
        for client in missing:
            self._m_dropped.labels(phase=tag).inc()
            self._m_evictions.labels(reason="straggler").inc()

    async def _ingest(
        self,
        session: ServerSession,
        client: int,
        datagram: bytes,
        tag: str,
        evicted: set[int],
    ) -> bool:
        """Feed one datagram to the session under the bound sender id.

        Returns True when the session accepted it (it then belongs in
        the phase's journal commit).
        """
        try:
            session.receive(datagram, sender=client)
        except ConflictError as error:
            # The at-most-once guard, cross-phase flavour: a resumed
            # client tried to replace an upload the session already
            # committed.
            await self._conflict_evict(client, tag, evicted, str(error))
            return False
        except AggregationError:
            # Spoofed sender, duplicate delivery, out-of-phase frame,
            # header mismatch: the connection is lying or broken either
            # way — evict it and let dropout tolerance absorb the loss.
            self._evict(client, tag, evicted, reason="protocol")
            return False
        return True

    def _evict(
        self, client: int, tag: str, evicted: set[int], reason: str
    ) -> None:
        if client in evicted:
            return
        evicted.add(client)
        self._parked.pop(client, None)
        self._m_evictions.labels(reason=reason).inc()
        self._m_dropped.labels(phase=tag).inc()
        connection = self._connections.get(client)
        if connection is not None:
            connection.close()

    async def _deliver(
        self, deliveries: dict[int, bytes], tag: str, evicted: set[int]
    ) -> None:
        for recipient in sorted(deliveries):
            if recipient in evicted:
                continue
            connection = self._connections.get(recipient)
            if connection is None:
                continue
            try:
                await write_datagram(
                    connection.writer, deliveries[recipient]
                )
            except (AggregationError, ConnectionError, OSError):
                if self.config.resume_grace > 0:
                    # The delivery stays in the session's replay
                    # buffer; a resume within the grace window gets it.
                    self._park(recipient)
                else:
                    self._evict(recipient, tag, evicted, reason="disconnect")

    def _wire_delta(
        self, session: ServerSession, before: WireStats, tag: str
    ) -> None:
        totals = session.stats.diff(before).phase_totals().get(tag)
        if totals is None:
            return
        for direction in ("up", "down"):
            messages = totals.get(f"{direction}_messages", 0)
            if messages:
                self._m_wire_messages.labels(
                    phase=tag, direction=direction
                ).inc(messages)
            volume = totals.get(f"{direction}_bytes", 0)
            if volume:
                self._m_wire_bytes.labels(
                    phase=tag, direction=direction
                ).inc(volume)

    def _close_round_connections(
        self, round_connections: list[_Connection]
    ) -> None:
        for connection in round_connections:
            connection.close()
