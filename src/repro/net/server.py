"""The real-socket SecAgg aggregation server.

This is the third transport over the sans-I/O protocol core — after the
synchronous in-memory loop (:func:`repro.secagg.bonawitz.run_bonawitz`)
and the simulated-clock mailbox
(:class:`repro.simulation.rounds.AsyncSecAggRound`) — and the first one
whose clients are *real peers on real sockets*: an asyncio TCP listener
drives one :class:`~repro.secagg.statemachine.ServerSession` per round,
with wall-clock phase deadlines doing the job the simulated clock's
``phase_timeout`` does in the simulator.

Transport rules (everything the protocol core deliberately does not
decide):

* **Identity is connection-bound.**  A connection's first datagram must
  open with :class:`~repro.secagg.wire.Hello`; the Hello's sender index
  becomes the connection's bound client id (first come, first bound —
  a duplicate id is refused with a typed
  :class:`~repro.secagg.wire.Reject`).  Every subsequent datagram is
  ingested as ``session.receive(data, sender=<bound id>)``, so a frame
  claiming a different origin raises inside the core and the connection
  is evicted — one socket can never impersonate another.
* **Phases close on the wall clock.**  A phase ends at the earlier of
  "every expected client delivered" and ``phase_timeout`` seconds;
  stragglers are treated as dropouts, exactly like the simulator.
* **Disconnects are evictions, not hangs.**  A peer that vanishes
  mid-phase (or whose socket is already gone at phase start) is removed
  from the waiting set immediately; Bonawitz dropout tolerance does the
  rest.
* **Late traffic is ignored and counted**, mirroring the mailbox
  transport's ``message-ignored`` semantics.

Telemetry lands in the *same* metric families the simulator reports
(``secagg_phase_wall_duration_seconds``, ``secagg_rounds_total``,
``secagg_wire_bytes_total``, ...), plus a handful of ``net_*`` families
only a real listener has (connections, evictions, round wall time); the
registry is served live over HTTP ``GET /metrics``
(:mod:`repro.net.http`), so simulated and real runs share one metrics
catalog and one scrape format.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import hashlib

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.net.frames import MAX_DATAGRAM_BYTES, read_datagram, write_datagram
from repro.net.http import start_metrics_endpoint
from repro.secagg.field import DEFAULT_FIELD, PrimeField
from repro.secagg.keys import TOY_GROUP, DhGroup
from repro.secagg.statemachine import PHASE_TAGS, ServerSession
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
)
from repro.secagg.wire import Hello, Reject, WireStats, decode_frames, encode_message
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import time_phase


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Configuration of one :class:`SecAggServer`.

    Attributes:
        host: Interface to bind (default loopback).
        port: TCP port (0 = ephemeral; read it back from
            :attr:`SecAggServer.port` after start).
        metrics_port: Port for the HTTP ``/metrics`` endpoint (0 =
            ephemeral, ``None`` = no endpoint).
        modulus: Aggregation modulus ``m``.
        dimension: Vector length ``d`` every client must upload.
        threshold: Shamir reconstruction threshold ``t``.
        cohort_size: Connections to admit into each round; the round
            starts once this many clients have completed the handshake
            (or ``join_timeout`` expires after the first join).
        rounds: Rounds to serve before :meth:`SecAggServer.serve_rounds`
            returns.
        phase_timeout: Wall seconds the server waits per phase before
            evicting the stragglers and moving on.
        join_timeout: Wall seconds after the first handshake to wait
            for the rest of the cohort.
        mask_prg: Mask PRG backend name for the round's negotiated
            header.
        group: DH group — defaults to the fast 61-bit toy group, the
            same default the in-memory drivers use.
        max_datagram_bytes: Upload size bound enforced by the framing
            layer, per datagram.
    """

    host: str = "127.0.0.1"
    port: int = 0
    metrics_port: int | None = 0
    modulus: int = 2**16
    dimension: int = 32
    threshold: int = 2
    cohort_size: int = 4
    rounds: int = 1
    phase_timeout: float = 30.0
    join_timeout: float = 30.0
    mask_prg: str | None = None
    group: DhGroup = TOY_GROUP
    field: PrimeField = DEFAULT_FIELD
    max_datagram_bytes: int = MAX_DATAGRAM_BYTES

    def __post_init__(self) -> None:
        if self.cohort_size < 2:
            raise ConfigurationError(
                f"cohort_size must be >= 2, got {self.cohort_size}"
            )
        if not 2 <= self.threshold <= self.cohort_size:
            raise ConfigurationError(
                f"threshold must lie in [2, {self.cohort_size}], "
                f"got {self.threshold}"
            )
        if self.phase_timeout <= 0 or self.join_timeout <= 0:
            raise ConfigurationError("timeouts must be > 0")
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")


@dataclasses.dataclass(frozen=True)
class NetRoundResult:
    """Outcome of one served round.

    Attributes:
        index: Round number (0-based).
        modular_sum: The recovered aggregate, or ``None`` if aborted.
        included: ``U2`` — clients whose input made the aggregate.
        dropped: Round participants that dropped, straggled, or were
            evicted before their input made it in.
        evicted: Subset of ``dropped`` the *transport* removed
            (disconnects, spoofed frames, protocol violations).
        rejected: Clients refused at Hello, with the refusal reason.
        aborted: Abort reason, or ``None`` on success.
        wall_duration: Wall seconds from round start to completion.
        wire: The round's byte/message ledger.
    """

    index: int
    modular_sum: np.ndarray | None
    included: frozenset[int]
    dropped: frozenset[int]
    evicted: frozenset[int]
    rejected: dict[int, str]
    aborted: str | None
    wall_duration: float
    wire: WireStats | None

    @property
    def digest(self) -> str | None:
        """SHA-256 hex digest of the aggregate (``None`` if aborted) —
        directly comparable with the in-memory transports' digests."""
        if self.modular_sum is None:
            return None
        return hashlib.sha256(self.modular_sum.tobytes()).hexdigest()


class _Connection:
    """One accepted, handshake-bound client connection."""

    __slots__ = ("client", "writer")

    def __init__(self, client: int, writer: asyncio.StreamWriter) -> None:
        self.client = client
        self.writer = writer

    def close(self) -> None:
        with contextlib.suppress(ConnectionError, OSError, RuntimeError):
            self.writer.close()


class SecAggServer:
    """Serve SecAgg rounds to real TCP clients.

    Usage (one event loop; the swarm may share it or live in another
    process entirely)::

        server = SecAggServer(ServerConfig(cohort_size=16, threshold=10))
        await server.start()
        results = await server.serve_rounds()
        await server.stop()

    Args:
        config: The server configuration.
        metrics: Registry to report into (and to serve on ``/metrics``);
            a private one is created by default.
    """

    def __init__(
        self,
        config: ServerConfig,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.results: list[NetRoundResult] = []
        # Header for pre-round Reject notices (duplicate ids); rounds
        # negotiate their own header via their ServerSession.
        self._reject_header = ServerSession(
            config.modulus, config.dimension, config.threshold,
            config.field, config.group, config.mask_prg,
        ).header
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._inbox: asyncio.Queue = asyncio.Queue()
        self._connections: dict[int, _Connection] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._pending_joins: dict[int, bytes] = {}
        # Same family names (and help) the simulator's rounds report
        # into, so /metrics holds one catalog for both worlds.
        self._m_wall_phase = self.metrics.histogram(
            "secagg_phase_wall_duration_seconds",
            "Wall-clock compute seconds per protocol phase.",
        )
        self._m_rounds = self.metrics.counter(
            "secagg_rounds_total",
            "Secure-aggregation rounds finished, by outcome.",
        )
        self._m_timeouts = self.metrics.counter(
            "secagg_phase_timeouts_total",
            "Phases the server closed at the deadline, by phase.",
        )
        self._m_dropped = self.metrics.counter(
            "secagg_clients_dropped_total",
            "Cohort members that dropped or straggled out, by phase.",
        )
        self._m_ignored = self.metrics.counter(
            "secagg_messages_ignored_total",
            "Datagrams ignored: stragglers, duplicates, unknown senders.",
        )
        self._m_wire_messages = self.metrics.counter(
            "secagg_wire_messages_total",
            "Protocol messages on the wire, by phase and direction.",
        )
        self._m_wire_bytes = self.metrics.counter(
            "secagg_wire_bytes_total",
            "Serialized bytes on the wire, by phase and direction.",
        )
        # Families only a real listener has.
        self._m_connections = self.metrics.counter(
            "net_connections_total",
            "TCP connections by handshake outcome.",
        )
        self._m_evictions = self.metrics.counter(
            "net_evictions_total",
            "Clients evicted from a round by the transport, by reason.",
        )
        self._m_round_wall = self.metrics.histogram(
            "net_round_wall_seconds",
            "Wall seconds per served round, handshake to aggregate.",
        )

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the TCP listener (and the ``/metrics`` endpoint)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        if self.config.metrics_port is not None:
            self._metrics_server = await start_metrics_endpoint(
                self.metrics, host=self.config.host,
                port=self.config.metrics_port,
            )

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ConfigurationError("the server has not been started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> int | None:
        """The bound ``/metrics`` port, or ``None`` when disabled."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop listening and drop every open connection."""
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = self._metrics_server = None
        for connection in list(self._connections.values()):
            connection.close()
        self._connections.clear()
        # Drain the per-connection reader tasks: the closes above feed
        # them EOF, so they exit on their own.  Waiting (rather than
        # cancelling) matters on Python 3.11, where cancelling a
        # streams-server handler task makes the protocol's completion
        # callback itself raise and spam the loop's exception handler.
        tasks = [
            task for task in self._handler_tasks
            if task is not asyncio.current_task()
        ]
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=2.0)
            for task in pending:  # pragma: no cover - stuck handler
                task.cancel()
            if pending:  # pragma: no cover
                await asyncio.wait(pending, timeout=1.0)

    async def __aenter__(self) -> "SecAggServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        limit = self.config.max_datagram_bytes
        try:
            handshake = await asyncio.wait_for(
                read_datagram(reader, limit), self.config.join_timeout
            )
        except (AggregationError, asyncio.TimeoutError, ConnectionError):
            self._m_connections.labels(outcome="malformed-handshake").inc()
            writer.close()
            return
        if handshake is None:
            self._m_connections.labels(outcome="malformed-handshake").inc()
            writer.close()
            return
        client = self._bound_client(handshake)
        if client is None:
            self._m_connections.labels(outcome="malformed-handshake").inc()
            writer.close()
            return
        if client in self._connections:
            self._m_connections.labels(outcome="duplicate-id").inc()
            await self._refuse(
                writer, client,
                f"client id {client} is already bound to another connection",
            )
            return
        connection = _Connection(client, writer)
        self._connections[client] = connection
        self._m_connections.labels(outcome="accepted").inc()
        await self._inbox.put(("join", client, handshake))
        try:
            while True:
                payload = await read_datagram(reader, limit)
                if payload is None:
                    break
                await self._inbox.put(("data", client, payload))
        except (AggregationError, ConnectionError, OSError):
            pass  # Mid-datagram disconnect or frame abuse: same eviction.
        finally:
            if self._connections.get(client) is connection:
                del self._connections[client]
            await self._inbox.put(("gone", client, b""))
            connection.close()

    @staticmethod
    def _bound_client(handshake: bytes) -> int | None:
        """The client id a handshake datagram binds, or ``None``.

        The first frame must be a :class:`~repro.secagg.wire.Hello` with
        a positive sender index; the full datagram (Hello + Advertise)
        is later fed to the session verbatim.
        """
        try:
            frames = decode_frames(handshake)
        except AggregationError:
            return None
        if not frames or not isinstance(frames[0][1], Hello):
            return None
        sender = frames[0][1].sender
        return sender if sender > 0 else None

    async def _refuse(
        self, writer: asyncio.StreamWriter, client: int, reason: str
    ) -> None:
        """Answer a doomed handshake with a typed Reject, then close."""
        with contextlib.suppress(ConnectionError, OSError):
            await write_datagram(
                writer,
                encode_message(
                    Reject(client=client, reason=reason),
                    self._reject_header,
                ),
            )
        writer.close()

    # -- round driving ----------------------------------------------------

    async def serve_rounds(self) -> list[NetRoundResult]:
        """Serve ``config.rounds`` rounds; returns their results."""
        for index in range(self.config.rounds):
            result = await self._run_round(index)
            self.results.append(result)
        return self.results

    async def _run_round(self, index: int) -> NetRoundResult:
        loop = asyncio.get_running_loop()
        joins = await self._gather_cohort()
        # Snapshot the cohort's connection *objects*: by round end the
        # same client ids may already be bound to next-round
        # connections, and cleanup must not close those.
        round_connections = [
            self._connections[client]
            for client in joins
            if client in self._connections
        ]
        started = loop.time()
        session = ServerSession(
            self.config.modulus,
            self.config.dimension,
            self.config.threshold,
            self.config.field,
            self.config.group,
            self.config.mask_prg,
            metrics=self.metrics,
        )
        evicted: set[int] = set()
        aborted: str | None = None
        with time_phase("round", wall_histogram=self._m_round_wall):
            expected = set(joins)
            for phase in (
                ROUND_ADVERTISE,
                ROUND_SHARE_KEYS,
                ROUND_MASKED_INPUT,
                ROUND_UNMASK,
            ):
                tag = PHASE_TAGS[phase]
                wire_before = session.stats.snapshot()
                with time_phase(
                    tag,
                    wall_histogram=self._m_wall_phase.labels(phase=tag),
                ):
                    if phase == ROUND_ADVERTISE:
                        datagrams = joins
                    else:
                        datagrams = await self._collect(tag, expected, evicted)
                    for client in sorted(datagrams):
                        self._ingest(
                            session, client, datagrams[client], tag, evicted
                        )
                    try:
                        deliveries = session.advance()
                    except AggregationError as error:
                        aborted = str(error)
                        break
                    if phase != ROUND_UNMASK:
                        await self._deliver(deliveries, tag, evicted)
                    expected = set(session.expected)
                self._wire_delta(session, wire_before, tag)
        wall_duration = loop.time() - started
        participants = frozenset(joins)
        if aborted is None:
            included = session.included
            modular_sum = session.modular_sum
            self._m_rounds.labels(outcome="completed").inc()
        else:
            included = frozenset()
            modular_sum = None
            self._m_rounds.labels(outcome="aborted").inc()
        self._close_round_connections(round_connections)
        return NetRoundResult(
            index=index,
            modular_sum=modular_sum,
            included=included,
            dropped=participants - included,
            evicted=frozenset(evicted),
            rejected=dict(session.rejections),
            aborted=aborted,
            wall_duration=wall_duration,
            wire=session.stats,
        )

    async def _gather_cohort(self) -> dict[int, bytes]:
        """Admit handshakes until the cohort is full (or times out)."""
        loop = asyncio.get_running_loop()
        joins: dict[int, bytes] = {}
        while self._pending_joins and len(joins) < self.config.cohort_size:
            client, handshake = self._pending_joins.popitem()
            if client in self._connections:
                joins[client] = handshake
        deadline = (
            loop.time() + self.config.join_timeout if joins else None
        )
        while len(joins) < self.config.cohort_size:
            if deadline is None:
                event = await self._inbox.get()
            else:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    event = await asyncio.wait_for(
                        self._inbox.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
            kind, client, payload = event
            if kind == "join":
                joins[client] = payload
                if deadline is None:
                    deadline = loop.time() + self.config.join_timeout
            elif kind == "gone":
                joins.pop(client, None)
            else:
                self._m_ignored.inc()
        return joins

    async def _collect(
        self, tag: str, expected: set[int], evicted: set[int]
    ) -> dict[int, bytes]:
        """Gather one phase's datagrams until complete or deadline.

        Members whose connection is already gone at phase start are
        evicted immediately — a mid-phase disconnect must never leave
        the round waiting out the full deadline for a peer that cannot
        answer.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.phase_timeout
        collected: dict[int, bytes] = {}
        pending = {
            client
            for client in expected
            if client not in evicted
        }
        for client in sorted(pending):
            if client not in self._connections:
                self._evict(client, tag, evicted, reason="disconnect")
        pending -= evicted
        while pending - set(collected):
            remaining = deadline - loop.time()
            if remaining <= 0:
                self._expire(tag, pending - set(collected))
                break
            try:
                kind, client, payload = await asyncio.wait_for(
                    self._inbox.get(), remaining
                )
            except asyncio.TimeoutError:
                self._expire(tag, pending - set(collected))
                break
            if kind == "join":
                # A connection for the *next* round; park it.
                self._pending_joins[client] = payload
                continue
            if kind == "gone":
                if client in pending and client not in collected:
                    self._evict(client, tag, evicted, reason="disconnect")
                    pending.discard(client)
                continue
            if client not in pending or client in collected:
                self._m_ignored.inc()
                continue
            collected[client] = payload
        return collected

    def _expire(self, tag: str, missing: set[int]) -> None:
        self._m_timeouts.labels(phase=tag).inc()
        for client in missing:
            self._m_dropped.labels(phase=tag).inc()
            self._m_evictions.labels(reason="straggler").inc()

    def _ingest(
        self,
        session: ServerSession,
        client: int,
        datagram: bytes,
        tag: str,
        evicted: set[int],
    ) -> None:
        """Feed one datagram to the session under the bound sender id."""
        try:
            session.receive(datagram, sender=client)
        except AggregationError:
            # Spoofed sender, duplicate delivery, out-of-phase frame,
            # header mismatch: the connection is lying or broken either
            # way — evict it and let dropout tolerance absorb the loss.
            self._evict(client, tag, evicted, reason="protocol")

    def _evict(
        self, client: int, tag: str, evicted: set[int], reason: str
    ) -> None:
        if client in evicted:
            return
        evicted.add(client)
        self._m_evictions.labels(reason=reason).inc()
        self._m_dropped.labels(phase=tag).inc()
        connection = self._connections.get(client)
        if connection is not None:
            connection.close()

    async def _deliver(
        self, deliveries: dict[int, bytes], tag: str, evicted: set[int]
    ) -> None:
        for recipient in sorted(deliveries):
            if recipient in evicted:
                continue
            connection = self._connections.get(recipient)
            if connection is None:
                continue
            try:
                await write_datagram(
                    connection.writer, deliveries[recipient]
                )
            except (AggregationError, ConnectionError, OSError):
                self._evict(recipient, tag, evicted, reason="disconnect")

    def _wire_delta(
        self, session: ServerSession, before: WireStats, tag: str
    ) -> None:
        totals = session.stats.diff(before).phase_totals().get(tag)
        if totals is None:
            return
        for direction in ("up", "down"):
            messages = totals.get(f"{direction}_messages", 0)
            if messages:
                self._m_wire_messages.labels(
                    phase=tag, direction=direction
                ).inc(messages)
            volume = totals.get(f"{direction}_bytes", 0)
            if volume:
                self._m_wire_bytes.labels(
                    phase=tag, direction=direction
                ).inc(volume)

    def _close_round_connections(
        self, round_connections: list[_Connection]
    ) -> None:
        for connection in round_connections:
            connection.close()
