"""One swarm participant: a :class:`ClientSession` on a real socket.

:func:`run_client` drives the sans-I/O client session over TCP against
a :class:`~repro.net.server.SecAggServer`: connect, send the handshake
datagram (Hello + Advertise — the server binds the connection to the
Hello's sender index), then alternate ``read delivery -> handle ->
send response`` through the three remaining phases.  The function never
raises on protocol-level outcomes; everything a swarm wants to count
comes back as a :class:`ClientReport`.

Fault injection is part of the contract, not an afterthought:

* ``delay`` sleeps before every send (straggler injection — push a
  client past the server's phase deadline and it is evicted, not
  waited on);
* ``drop_at_phase`` silently stops participating before that phase's
  upload — phase 0 means "never connects", matching ``run_bonawitz``'s
  ``dropouts={index: 0}`` semantics exactly, so a swarm schedule can be
  replayed against the in-memory transport for bit-identical aggregates;
* ``version`` proposes a protocol version at Hello — an unsupported one
  exercises the typed-Reject path over a real socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses

import numpy as np

from repro.errors import AggregationError
from repro.net.frames import read_datagram, write_datagram
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
)
from repro.secagg.field import DEFAULT_FIELD, PrimeField
from repro.secagg.keys import TOY_GROUP, DhGroup
from repro.secagg.statemachine import PHASE_TAGS, ClientSession
from repro.secagg.wire import PROTOCOL_V1


@dataclasses.dataclass(frozen=True)
class ClientPlan:
    """What one swarm client does this round.

    Attributes:
        index: Protocol index (nonzero; the id the handshake binds).
        seed: Seed of the client's local RNG — the swarm derives these
            exactly like :func:`~repro.secagg.bonawitz.run_bonawitz`
            derives per-client generators, which is what makes the
            network aggregate bit-identical to the in-memory one.
        delay: Seconds to sleep before each post-handshake upload
            (0 = none); the handshake itself is never delayed.
        drop_at_phase: Protocol phase (0-3) before whose upload the
            client silently stops, or ``None`` to run to completion.
            Phase 0 means the client never connects.
        version: Protocol version proposed at Hello.
    """

    index: int
    seed: int
    delay: float = 0.0
    drop_at_phase: int | None = None
    version: int = PROTOCOL_V1


@dataclasses.dataclass(frozen=True)
class ClientReport:
    """How one client's round went.

    ``status`` is one of ``completed`` (all four uploads sent),
    ``rejected`` (typed Reject at Hello), ``dropped`` (planned dropout),
    ``disconnected`` (the transport failed or the server closed early),
    or ``error`` (a protocol violation surfaced client-side).
    """

    index: int
    status: str
    detail: str = ""
    uploads_sent: int = 0


async def run_client(
    host: str,
    port: int,
    plan: ClientPlan,
    vector: np.ndarray,
    modulus: int,
    threshold: int,
    group: DhGroup = TOY_GROUP,
    field: PrimeField = DEFAULT_FIELD,
    mask_prg: str | None = None,
    timeout: float = 60.0,
) -> ClientReport:
    """Run one client's whole round against a listening server.

    Args:
        host/port: The server's TCP address.
        plan: Identity, seed and fault-injection schedule.
        vector: The client's private input over ``Z_modulus``.
        modulus/threshold/group/field/mask_prg: Protocol parameters —
            must match the server's.
        timeout: Wall seconds to wait for any single server delivery.

    Returns:
        The client's :class:`ClientReport`; never raises for
        protocol-level outcomes.
    """
    if plan.drop_at_phase == ROUND_ADVERTISE:
        return ClientReport(
            index=plan.index,
            status="dropped",
            detail="round-0 dropout: never connected",
        )
    session = ClientSession(
        index=plan.index,
        vector=np.asarray(vector),
        modulus=modulus,
        threshold=threshold,
        rng=np.random.default_rng(plan.seed),
        group=group,
        field=field,
        mask_prg=mask_prg,
        version=plan.version,
    )
    uploads = 0
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except (ConnectionError, OSError) as error:
        return ClientReport(
            index=plan.index, status="disconnected", detail=str(error)
        )
    try:
        # The handshake is never delayed: straggler injection targets
        # the round's phases, and a late *join* would just hold the
        # cohort open rather than exercise a phase deadline.
        await write_datagram(writer, b"".join(session.start()))
        uploads += 1
        for phase in (ROUND_SHARE_KEYS, ROUND_MASKED_INPUT, ROUND_UNMASK):
            delivery = await asyncio.wait_for(read_datagram(reader), timeout)
            if delivery is None:
                return ClientReport(
                    index=plan.index,
                    status="disconnected",
                    detail=(
                        f"server closed before the {PHASE_TAGS[phase]} "
                        "delivery"
                    ),
                    uploads_sent=uploads,
                )
            responses = session.handle(delivery)
            if session.rejected is not None:
                return ClientReport(
                    index=plan.index,
                    status="rejected",
                    detail=str(session.rejected),
                    uploads_sent=uploads,
                )
            if plan.drop_at_phase == phase:
                # A mid-round dropout receives the phase's delivery and
                # then silently disconnects instead of uploading — the
                # client is *in the roster* and fails at this phase,
                # exactly ``run_bonawitz``'s ``dropouts={index: phase}``.
                # Vanishing before the delivery would instead remove the
                # join from the forming cohort and stall the server at
                # the join deadline.
                return ClientReport(
                    index=plan.index,
                    status="dropped",
                    detail=(
                        f"planned dropout before the "
                        f"{PHASE_TAGS[phase]} upload"
                    ),
                    uploads_sent=uploads,
                )
            if plan.delay:
                await asyncio.sleep(plan.delay)
            if responses:
                await write_datagram(writer, b"".join(responses))
                uploads += 1
        return ClientReport(
            index=plan.index, status="completed", uploads_sent=uploads
        )
    except AggregationError as error:
        return ClientReport(
            index=plan.index,
            status="error",
            detail=str(error),
            uploads_sent=uploads,
        )
    except (
        asyncio.TimeoutError,
        asyncio.IncompleteReadError,
        ConnectionError,
        OSError,
    ) as error:
        return ClientReport(
            index=plan.index,
            status="disconnected",
            detail=str(error) or type(error).__name__,
            uploads_sent=uploads,
        )
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()
