"""One swarm participant: a :class:`ClientSession` on a real socket.

:func:`run_client` drives the sans-I/O client session over TCP against
a :class:`~repro.net.server.SecAggServer`: connect, send the handshake
datagram (Hello + Advertise — the server binds the connection to the
Hello's sender index), read the :class:`~repro.secagg.wire.Welcome`
frame that pins the durable round id, then alternate ``read delivery ->
handle -> send response`` through the three remaining phases.  The
function never raises on protocol-level outcomes; everything a swarm
wants to count comes back as a :class:`ClientReport`.

Fault injection is part of the contract, not an afterthought:

* ``delay`` sleeps before every send (straggler injection — push a
  client past the server's phase deadline and it is evicted, not
  waited on);
* ``drop_at_phase`` silently stops participating before that phase's
  upload — phase 0 means "never connects", matching ``run_bonawitz``'s
  ``dropouts={index: 0}`` semantics exactly, so a swarm schedule can be
  replayed against the in-memory transport for bit-identical aggregates;
* ``disconnect_at_phase`` abruptly drops the TCP connection at that
  phase (before its delivery, or after its upload with
  ``disconnect_after_upload``) and then *resumes*: reconnect under the
  retry policy, present a :class:`~repro.secagg.wire.Resume` handshake
  with the round id and the count of deliveries already processed, and
  continue from the server's replay — a transient fault, not a dropout;
* ``version`` proposes a protocol version at Hello — an unsupported one
  exercises the typed-Reject path over a real socket.

Resilience knobs: ``connect_timeout`` bounds every dial (no more
hanging forever against a dead address), and a
:class:`~repro.resilience.retry.RetryPolicy` governs reconnect attempts
with capped exponential backoff + deterministic jitter (the jitter RNG
is derived from the plan seed, so swarm runs stay reproducible).  With
``retry=None`` (the default) the client behaves exactly as before: one
dial, no resume — any transport failure is terminal.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import random

import numpy as np

from repro.errors import AggregationError
from repro.net.frames import read_datagram, write_datagram
from repro.resilience.retry import RetryPolicy
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
)
from repro.secagg.field import DEFAULT_FIELD, PrimeField
from repro.secagg.keys import TOY_GROUP, KeyAgreementGroup
from repro.secagg.statemachine import PHASE_TAGS, ClientSession
from repro.secagg.wire import (
    PROTOCOL_V1,
    Reject,
    Resume,
    Welcome,
    decode_frames,
    encode_message,
)
from repro.telemetry import MetricsRegistry

_TRANSPORT_ERRORS = (
    asyncio.IncompleteReadError,
    ConnectionError,
    OSError,
)


@dataclasses.dataclass(frozen=True)
class ClientPlan:
    """What one swarm client does this round.

    Attributes:
        index: Protocol index (nonzero; the id the handshake binds).
        seed: Seed of the client's local RNG — the swarm derives these
            exactly like :func:`~repro.secagg.bonawitz.run_bonawitz`
            derives per-client generators, which is what makes the
            network aggregate bit-identical to the in-memory one.
        delay: Seconds to sleep before each post-handshake upload
            (0 = none); the handshake itself is never delayed.
        drop_at_phase: Protocol phase (0-3) before whose upload the
            client silently stops, or ``None`` to run to completion.
            Phase 0 means the client never connects.
        version: Protocol version proposed at Hello.
        disconnect_at_phase: Protocol phase (1-3) at which the client
            abruptly drops its connection and then resumes via the
            Resume handshake, or ``None``.  Requires a retry policy and
            a server-side grace window; unlike ``drop_at_phase`` the
            client remains a full participant of the round.
        disconnect_after_upload: When True the injected disconnect
            happens *after* that phase's upload was sent (exercising
            server-side idempotent redelivery on resume) instead of
            before its delivery was read.
    """

    index: int
    seed: int
    delay: float = 0.0
    drop_at_phase: int | None = None
    version: int = PROTOCOL_V1
    disconnect_at_phase: int | None = None
    disconnect_after_upload: bool = False


@dataclasses.dataclass(frozen=True)
class ClientReport:
    """How one client's round went.

    ``status`` is one of ``completed`` (all four uploads sent),
    ``rejected`` (typed Reject at Hello), ``dropped`` (planned dropout),
    ``disconnected`` (the transport failed or the server closed early,
    and retries — if any — were exhausted), ``resume-rejected`` (the
    server refused a Resume handshake: stale round id, expired grace, or
    prior eviction), or ``error`` (a protocol violation surfaced
    client-side).

    ``retries`` counts reconnect attempts (including failed ones);
    ``resumes`` counts Resume handshakes the server accepted.
    """

    index: int
    status: str
    detail: str = ""
    uploads_sent: int = 0
    retries: int = 0
    resumes: int = 0


class _GiveUp(Exception):
    """Terminal transport failure: report ``disconnected`` with detail."""


class _ResumeRejected(Exception):
    """The server refused the Resume handshake; the reason is terminal."""


class _Runner:
    """Mutable per-round client state threaded through the retry paths."""

    def __init__(
        self,
        host: str,
        port: int,
        plan: ClientPlan,
        session: ClientSession,
        timeout: float,
        connect_timeout: float,
        retry: RetryPolicy | None,
        metrics: MetricsRegistry | None,
    ) -> None:
        self.host = host
        self.port = port
        self.plan = plan
        self.session = session
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retry = retry
        # Jitter only — protocol randomness lives in the session's RNG.
        self.rng = random.Random((plan.seed << 8) ^ plan.index)
        self.metrics = metrics
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        # session.start() draws the round's keys; it must run exactly
        # once, so the handshake bytes are cached for re-dials.
        self.handshake = b"".join(session.start())
        self.last_upload: bytes = self.handshake
        self.round_id: int | None = None
        self.deliveries_seen = 0
        self.retries = 0
        self.resumes = 0
        self.uploads = 0

    # -- transport ------------------------------------------------------

    def _count_retry(self, reason: str) -> None:
        self.retries += 1
        if self.metrics is not None:
            self.metrics.counter(
                "net_retries_total", "Client reconnect attempts by reason."
            ).labels(reason=reason).inc()

    async def _dial(self) -> None:
        self.reader, self.writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            self.connect_timeout,
        )

    async def connect(self) -> None:
        """Dial with capped exponential backoff under the retry policy."""
        attempt = 0
        while True:
            try:
                await self._dial()
                return
            except (asyncio.TimeoutError, *_TRANSPORT_ERRORS) as error:
                timed_out = isinstance(error, asyncio.TimeoutError)
                if self.retry is None or attempt >= self.retry.max_retries:
                    raise _GiveUp(
                        f"connect timed out after {self.connect_timeout}s"
                        if timed_out
                        else (str(error) or type(error).__name__)
                    ) from error
                self._count_retry(
                    "connect-timeout" if timed_out else "connect"
                )
                await asyncio.sleep(self.retry.delay(attempt, self.rng))
                attempt += 1

    def drop_connection(self) -> None:
        """Abruptly sever the transport, as the network would."""
        if self.writer is not None:
            with contextlib.suppress(Exception):
                self.writer.transport.abort()
        self.reader = self.writer = None

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            with contextlib.suppress(*_TRANSPORT_ERRORS):
                await self.writer.wait_closed()
            self.reader = self.writer = None

    # -- round admission ------------------------------------------------

    async def admit(self) -> Reject | None:
        """Send the handshake and read the Welcome that opens the round.

        Returns the typed Reject when the server refuses the Hello, or
        ``None`` on success (``round_id`` is then pinned).  A connection
        that dies before admission is redialed under the retry policy —
        re-sending the *identical* handshake bytes, which the server
        treats as a resume-from-scratch if the round already started.
        """
        attempt = 0
        while True:
            payload: bytes | None = None
            try:
                assert self.writer is not None and self.reader is not None
                await write_datagram(self.writer, self.handshake)
                payload = await asyncio.wait_for(
                    read_datagram(self.reader), self.timeout
                )
            except _TRANSPORT_ERRORS:
                payload = None
            if payload is not None:
                frames = decode_frames(payload)
                message = frames[0][1] if frames else None
                if isinstance(message, Welcome):
                    self.round_id = message.round_id
                    return None
                if isinstance(message, Reject):
                    return message
                raise AggregationError(
                    f"client {self.plan.index} expected Welcome or Reject "
                    f"after the handshake, got "
                    f"{type(message).__name__ if message else 'nothing'}"
                )
            if self.retry is None or attempt >= self.retry.max_retries:
                raise _GiveUp("server closed before the round opened")
            self._count_retry("admission")
            await asyncio.sleep(self.retry.delay(attempt, self.rng))
            self.drop_connection()
            await self.connect()
            attempt += 1

    # -- resume ---------------------------------------------------------

    async def resume(self, reason: str) -> None:
        """Reconnect and re-enter the in-flight round mid-phase.

        Presents ``Resume(index, round_id, deliveries_seen)``; on the
        Welcome ack, re-sends the last upload (the server ignores the
        idempotent duplicate — this covers the case where the original
        send raced the disconnect) and returns with the transport live.
        Replayed deliveries arrive as ordinary datagrams and are read by
        the phase loop.
        """
        if self.retry is None or self.round_id is None:
            raise _GiveUp(reason)
        self.drop_connection()
        attempt = 0
        while True:
            if attempt > self.retry.max_retries:
                raise _GiveUp(
                    f"resume attempts exhausted after {reason}"
                )
            if attempt > 0:
                await asyncio.sleep(
                    self.retry.delay(attempt - 1, self.rng)
                )
            self._count_retry(reason)
            attempt += 1
            try:
                await self._dial()
                assert self.writer is not None and self.reader is not None
                await write_datagram(
                    self.writer,
                    encode_message(
                        Resume(
                            sender=self.plan.index,
                            round_id=self.round_id,
                            deliveries=min(self.deliveries_seen, 255),
                        ),
                        self.session.header,
                    ),
                )
                ack = await asyncio.wait_for(
                    read_datagram(self.reader), self.timeout
                )
            except (asyncio.TimeoutError, *_TRANSPORT_ERRORS):
                self.drop_connection()
                continue
            if ack is None:
                self.drop_connection()
                continue
            frames = decode_frames(ack)
            message = frames[0][1] if frames else None
            if isinstance(message, Welcome):
                self.resumes += 1
                with contextlib.suppress(*_TRANSPORT_ERRORS):
                    await write_datagram(self.writer, self.last_upload)
                return
            if isinstance(message, Reject):
                raise _ResumeRejected(message.reason)
            self.drop_connection()

    # -- phase I/O ------------------------------------------------------

    async def read_delivery(self, tag: str) -> bytes:
        """Read one phase delivery, resuming through transport faults.

        A read *timeout* is terminal (the connection is alive; the phase
        simply has not closed — reconnecting cannot help), but EOF and
        connection errors trigger a resume when one is possible.
        """
        while True:
            assert self.reader is not None
            try:
                delivery = await asyncio.wait_for(
                    read_datagram(self.reader), self.timeout
                )
            except asyncio.TimeoutError:
                raise _GiveUp(
                    f"timed out waiting for the {tag} delivery"
                ) from None
            except _TRANSPORT_ERRORS as error:
                await self.resume(
                    str(error) or type(error).__name__
                )
                continue
            if delivery is None:
                await self.resume(f"server closed before the {tag} delivery")
                continue
            return delivery

    async def send_upload(self, upload: bytes, tag: str) -> None:
        try:
            assert self.writer is not None
            await write_datagram(self.writer, upload)
        except _TRANSPORT_ERRORS as error:
            await self.resume(str(error) or type(error).__name__)
            # resume() already re-sent ``last_upload``; if this upload
            # is newer, send it on the fresh transport.
            if upload != self.last_upload:
                assert self.writer is not None
                await write_datagram(self.writer, upload)

    async def transient_disconnect(self, tag: str) -> None:
        await self.resume(f"injected disconnect at {tag}")


async def run_client(
    host: str,
    port: int,
    plan: ClientPlan,
    vector: np.ndarray,
    modulus: int,
    threshold: int,
    group: KeyAgreementGroup = TOY_GROUP,
    field: PrimeField = DEFAULT_FIELD,
    mask_prg: str | None = None,
    timeout: float = 60.0,
    connect_timeout: float = 10.0,
    retry: RetryPolicy | None = None,
    metrics: MetricsRegistry | None = None,
) -> ClientReport:
    """Run one client's whole round against a listening server.

    Args:
        host/port: The server's TCP address.
        plan: Identity, seed and fault-injection schedule.
        vector: The client's private input over ``Z_modulus``.
        modulus/threshold/group/field/mask_prg: Protocol parameters —
            must match the server's.
        timeout: Wall seconds to wait for any single server delivery.
        connect_timeout: Wall seconds to wait for any single dial.
        retry: Reconnect policy; ``None`` disables retries and resume
            (every transport failure is then terminal).
        metrics: Optional registry for ``net_retries_total{reason=}``.

    Returns:
        The client's :class:`ClientReport`; never raises for
        protocol-level outcomes.
    """
    if plan.drop_at_phase == ROUND_ADVERTISE:
        return ClientReport(
            index=plan.index,
            status="dropped",
            detail="round-0 dropout: never connected",
        )
    session = ClientSession(
        index=plan.index,
        vector=np.asarray(vector),
        modulus=modulus,
        threshold=threshold,
        rng=np.random.default_rng(plan.seed),
        group=group,
        field=field,
        mask_prg=mask_prg,
        version=plan.version,
    )
    runner = _Runner(
        host=host,
        port=port,
        plan=plan,
        session=session,
        timeout=timeout,
        connect_timeout=connect_timeout,
        retry=retry,
        metrics=metrics,
    )

    def report(status: str, detail: str = "") -> ClientReport:
        return ClientReport(
            index=plan.index,
            status=status,
            detail=detail,
            uploads_sent=runner.uploads,
            retries=runner.retries,
            resumes=runner.resumes,
        )

    try:
        await runner.connect()
    except _GiveUp as giveup:
        return report("disconnected", str(giveup))
    try:
        # The handshake is never delayed: straggler injection targets
        # the round's phases, and a late *join* would just hold the
        # cohort open rather than exercise a phase deadline.
        rejected = await runner.admit()
        runner.uploads += 1
        if rejected is not None:
            return report("rejected", rejected.reason)
        for phase in (ROUND_SHARE_KEYS, ROUND_MASKED_INPUT, ROUND_UNMASK):
            tag = PHASE_TAGS[phase]
            if (
                plan.disconnect_at_phase == phase
                and not plan.disconnect_after_upload
            ):
                await runner.transient_disconnect(tag)
            delivery = await runner.read_delivery(tag)
            responses = session.handle(delivery)
            runner.deliveries_seen += 1
            if session.rejected is not None:
                return report("rejected", str(session.rejected))
            if plan.drop_at_phase == phase:
                # A mid-round dropout receives the phase's delivery and
                # then silently disconnects instead of uploading — the
                # client is *in the roster* and fails at this phase,
                # exactly ``run_bonawitz``'s ``dropouts={index: phase}``.
                # Vanishing before the delivery would instead remove the
                # join from the forming cohort and stall the server at
                # the join deadline.
                return report(
                    "dropped",
                    f"planned dropout before the {tag} upload",
                )
            if plan.delay:
                await asyncio.sleep(plan.delay)
            if responses:
                upload = b"".join(responses)
                await runner.send_upload(upload, tag)
                runner.last_upload = upload
                runner.uploads += 1
            if (
                plan.disconnect_at_phase == phase
                and plan.disconnect_after_upload
                and phase != ROUND_UNMASK
            ):
                # After the *final* upload there is nothing left to be
                # redelivered, and the round may commit before a Resume
                # lands — the injection would race round completion
                # rather than exercise replay, so it is skipped there.
                await runner.transient_disconnect(tag)
        return report("completed")
    except _GiveUp as giveup:
        return report("disconnected", str(giveup))
    except _ResumeRejected as refusal:
        return report("resume-rejected", str(refusal))
    except AggregationError as error:
        return report("error", str(error))
    except (asyncio.TimeoutError, *_TRANSPORT_ERRORS) as error:
        return report("disconnected", str(error) or type(error).__name__)
    finally:
        await runner.close()
