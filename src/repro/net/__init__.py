"""``repro.net`` — the real-socket transport over the sans-I/O core.

Everything above the protocol layer and below the CLI: a
length-prefixed datagram codec for TCP (:mod:`~repro.net.frames`), the
asyncio aggregation server driving one
:class:`~repro.secagg.statemachine.ServerSession` per round with
wall-clock phase deadlines and straggler eviction
(:mod:`~repro.net.server`), a single-client driver with fault injection
(:mod:`~repro.net.client`), a reproducible concurrent swarm whose
aggregate is bit-identical to the in-memory transport for the same
seeds (:mod:`~repro.net.swarm`), and a Prometheus ``/metrics`` HTTP
endpoint serving the same telemetry registry the simulator reports
into (:mod:`~repro.net.http`).

Stdlib asyncio only — no new dependencies.
"""

from repro.net.client import ClientPlan, ClientReport, run_client
from repro.net.frames import (
    MAX_DATAGRAM_BYTES,
    encode_datagram,
    read_datagram,
    write_datagram,
)
from repro.net.http import (
    METRICS_CONTENT_TYPE,
    scrape_metrics,
    start_metrics_endpoint,
)
from repro.net.server import NetRoundResult, SecAggServer, ServerConfig
from repro.net.swarm import (
    SwarmConfig,
    SwarmResult,
    client_plans,
    derive_population,
    dropout_schedule,
    expected_aggregate,
    expected_digest,
    run_swarm,
)

__all__ = [
    "MAX_DATAGRAM_BYTES",
    "METRICS_CONTENT_TYPE",
    "ClientPlan",
    "ClientReport",
    "NetRoundResult",
    "SecAggServer",
    "ServerConfig",
    "SwarmConfig",
    "SwarmResult",
    "client_plans",
    "derive_population",
    "dropout_schedule",
    "encode_datagram",
    "expected_aggregate",
    "expected_digest",
    "read_datagram",
    "run_client",
    "run_swarm",
    "scrape_metrics",
    "start_metrics_endpoint",
    "write_datagram",
]
