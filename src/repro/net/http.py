"""A minimal HTTP/1.1 endpoint serving the metrics registry.

One job: expose a live :class:`~repro.telemetry.registry.MetricsRegistry`
as ``GET /metrics`` in the Prometheus text exposition format — the very
same payload :func:`repro.telemetry.to_prometheus` renders for the
simulator's ``--metrics-out``, so a scraper cannot tell (and should not
care) whether a histogram was fed by the simulated clock or a real
socket.  ``GET /healthz`` answers ``ok`` for readiness probes; anything
else is a 404.

Dependency-free by design (stdlib asyncio only): the whole request
parser is "read the request line, drain headers until the blank line" —
enough for Prometheus, curl, and the CI smoke step, and not a general
web server on purpose.
"""

from __future__ import annotations

import asyncio

from repro.telemetry.exporters import to_prometheus
from repro.telemetry.registry import MetricsRegistry

#: Content type Prometheus expects from a text-exposition endpoint.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Bound on the request head (line + headers) a client may send.
_MAX_REQUEST_BYTES = 16 * 1024


def _response(status: str, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


async def _handle(
    registry: MetricsRegistry,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        request_line = await reader.readline()
        consumed = len(request_line)
        while consumed < _MAX_REQUEST_BYTES:  # Drain headers.
            line = await reader.readline()
            consumed += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
        parts = request_line.split()
        if len(parts) < 2 or parts[0] != b"GET":
            payload = _response(
                "405 Method Not Allowed", "text/plain", b"GET only\n"
            )
        elif parts[1] in (b"/metrics", b"/metrics/"):
            body = to_prometheus(registry.snapshot()).encode("utf-8")
            payload = _response("200 OK", METRICS_CONTENT_TYPE, body)
        elif parts[1] == b"/healthz":
            payload = _response("200 OK", "text/plain", b"ok\n")
        else:
            payload = _response("404 Not Found", "text/plain", b"not found\n")
        writer.write(payload)
        await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # The scraper went away; nothing to answer.
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def start_metrics_endpoint(
    registry: MetricsRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Start the ``/metrics`` HTTP listener; returns the asyncio server.

    Pass ``port=0`` for an ephemeral port; read the bound address back
    from ``server.sockets[0].getsockname()``.
    """

    async def handler(reader, writer):
        await _handle(registry, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


async def scrape_metrics(host: str, port: int) -> str:
    """Fetch ``/metrics`` from an endpoint (tests and examples).

    Returns the exposition body; raises :class:`ConnectionError` on a
    non-200 status.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET /metrics HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0]
    if not status_line.startswith(b"HTTP/1.1 200"):
        raise ConnectionError(
            f"metrics endpoint answered {status_line.decode(errors='replace')}"
        )
    return body.decode("utf-8")
