"""The end-of-run metrics report attached to a simulation result.

:class:`MetricsReport` wraps one frozen
:class:`~repro.telemetry.registry.MetricsSnapshot` with the accessors a
caller actually wants after a run — exposition text for ``--metrics-out``,
per-phase latency quantiles for the benchmark tables, counter lookups
for assertions — without re-exposing the mutable registry.
"""

from __future__ import annotations

import dataclasses

from repro.telemetry.exporters import to_json_lines, to_prometheus
from repro.telemetry.registry import MetricsSnapshot

#: Wire-tag order of the protocol phases, for stable report rows.
PHASE_ORDER = ("advertise", "share-keys", "masked-input", "unmask")

#: The phase-latency histogram names the round drivers observe into.
SIM_PHASE_HISTOGRAM = "secagg_phase_sim_duration_seconds"
WALL_PHASE_HISTOGRAM = "secagg_phase_wall_duration_seconds"


@dataclasses.dataclass(frozen=True)
class MetricsReport:
    """A run's frozen metrics, with reporting conveniences.

    Attributes:
        snapshot: Every series collected during the run (engine,
            rounds, shards, sessions — already merged).
    """

    snapshot: MetricsSnapshot

    def to_prometheus(self) -> str:
        """The run's metrics in Prometheus text exposition format."""
        return to_prometheus(self.snapshot)

    def to_json_lines(self) -> str:
        """The run's metrics as JSON lines."""
        return to_json_lines(self.snapshot)

    def counter(self, name: str, **labels: object) -> float:
        """Exact-match counter/gauge value (0.0 when absent)."""
        value = self.snapshot.value(name, **labels)
        return 0.0 if value is None else value

    def counter_sum(self, name: str, **labels: object) -> float:
        """Sum over all series of ``name`` matching a label subset."""
        return self.snapshot.sum_values(name, **labels)

    def phase_latency(
        self, phase: str, q: float, clock: str = "sim"
    ) -> float:
        """The ``q``-quantile latency of one protocol phase.

        Args:
            phase: Wire phase tag (see :data:`PHASE_ORDER`).
            q: Quantile in [0, 1].
            clock: ``"sim"`` (simulated seconds) or ``"wall"``.

        Aggregates across any extra labels (a sharded run's per-shard
        series fold into one distribution per phase).
        """
        name = SIM_PHASE_HISTOGRAM if clock == "sim" else WALL_PHASE_HISTOGRAM
        series = self.snapshot.aggregate(name, phase=phase)
        return float("nan") if series is None else series.quantile(q)

    def phase_latency_rows(
        self, quantiles: tuple[float, ...] = (0.5, 0.99)
    ) -> list[dict[str, float | str]]:
        """One row per phase with sim/wall latency quantiles.

        Phases with no observations are omitted; each row maps
        ``phase`` plus ``sim_p50``-style keys for every requested
        quantile on both clocks.
        """
        rows: list[dict[str, float | str]] = []
        for phase in PHASE_ORDER:
            series = self.snapshot.aggregate(SIM_PHASE_HISTOGRAM, phase=phase)
            if series is None or not series.count:
                continue
            row: dict[str, float | str] = {"phase": phase}
            for q in quantiles:
                suffix = f"p{round(q * 100)}"
                row[f"sim_{suffix}"] = self.phase_latency(phase, q, "sim")
                row[f"wall_{suffix}"] = self.phase_latency(phase, q, "wall")
            rows.append(row)
        return rows
