"""``repro.telemetry`` — the measurement layer of the simulation stack.

A dependency-free metrics registry (counters, gauges, histograms with
fixed log-scale latency buckets, labeled series), thread- and
process-merge-safe snapshots, two exporters (Prometheus text exposition
and JSON lines), and span timers that measure simulated and wall time
together.  The simulation stack — round drivers, sharding, the engine,
the sans-I/O protocol sessions — reports into one registry per run; the
future network server exposes the same exposition text on ``/metrics``.

Layering:

* :mod:`~repro.telemetry.registry` — instruments, registry, snapshots.
* :mod:`~repro.telemetry.spans` — dual-clock region timing.
* :mod:`~repro.telemetry.exporters` — exposition/JSONL render + parse.
* :mod:`~repro.telemetry.report` — the frozen end-of-run report.
"""

from repro.telemetry.exporters import (
    ParsedMetrics,
    parse_prometheus,
    to_json_lines,
    to_prometheus,
    trace_to_json_lines,
)
from repro.telemetry.registry import (
    COHORT_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    SeriesSnapshot,
    merge_snapshots,
)
from repro.telemetry.report import (
    PHASE_ORDER,
    SIM_PHASE_HISTOGRAM,
    WALL_PHASE_HISTOGRAM,
    MetricsReport,
)
from repro.telemetry.spans import Span, time_phase

__all__ = [
    "COHORT_SIZE_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "PHASE_ORDER",
    "SIM_PHASE_HISTOGRAM",
    "WALL_PHASE_HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsReport",
    "MetricsSnapshot",
    "ParsedMetrics",
    "SeriesSnapshot",
    "Span",
    "merge_snapshots",
    "parse_prometheus",
    "time_phase",
    "to_json_lines",
    "to_prometheus",
    "trace_to_json_lines",
]
