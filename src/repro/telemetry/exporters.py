"""Snapshot exporters: Prometheus text exposition and JSON lines.

Two output formats, one input (:class:`~repro.telemetry.registry.MetricsSnapshot`):

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, one sample per line, histograms as
  cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``).
  This is the exact payload a ``/metrics`` endpoint will serve;
  :func:`parse_prometheus` is the matching validator/parser used by the
  round-trip tests and the CI smoke step (it rejects malformed lines,
  duplicate series, and non-monotone histogram buckets).
* :func:`to_json_lines` — one JSON object per series, for log
  pipelines and ad-hoc analysis.

Plus :func:`trace_to_json_lines`, which streams a
:class:`~repro.simulation.events.SimulationTrace`'s events as JSONL —
``repro simulate --trace-out`` writes exactly this.
"""

from __future__ import annotations

import json
import math
import re
from collections.abc import Iterable, Iterator

from repro.telemetry.registry import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricsSnapshot,
    SeriesSnapshot,
)

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _format_value(value: float) -> str:
    """Format a sample value: integers bare, floats via repr (which
    round-trips exactly through ``float()``), infinities Prometheus-style."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _label_text(labels: Iterable[tuple[str, str]]) -> str:
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels
    )
    return f"{{{inner}}}" if inner else ""


def _series_lines(series: SeriesSnapshot) -> Iterator[str]:
    if series.kind == HISTOGRAM:
        cumulative = 0
        for bound, count in series.buckets:
            cumulative += count
            le = (
                "+Inf" if math.isinf(bound) else _format_value(bound)
            )
            labels = series.labels + (("le", le),)
            yield f"{series.name}_bucket{_label_text(labels)} {cumulative}"
        yield (
            f"{series.name}_sum{_label_text(series.labels)} "
            f"{_format_value(series.sum)}"
        )
        yield (
            f"{series.name}_count{_label_text(series.labels)} "
            f"{series.count}"
        )
    else:
        yield (
            f"{series.name}{_label_text(series.labels)} "
            f"{_format_value(series.value or 0.0)}"
        )


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Series are grouped by family in sorted name order, each family
    preceded by its ``# HELP`` and ``# TYPE`` headers; within a family
    the samples follow the snapshot's (sorted-label) order.  The output
    is deterministic for a given snapshot.
    """
    by_name: dict[str, list[SeriesSnapshot]] = {}
    for series in snapshot.series:
        by_name.setdefault(series.name, []).append(series)
    lines: list[str] = []
    for name in sorted(by_name):
        group = by_name[name]
        help_text = next((s.help for s in group if s.help), "")
        if help_text:
            escaped = help_text.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {group[0].kind}")
        for series in group:
            lines.extend(_series_lines(series))
    return "\n".join(lines) + ("\n" if lines else "")


class ParsedMetrics:
    """The result of :func:`parse_prometheus`.

    Attributes:
        types: Family name -> declared kind.
        samples: ``(sample_name, ((label, value), ...))`` -> float.
    """

    def __init__(
        self,
        types: dict[str, str],
        samples: dict[tuple[str, tuple[tuple[str, str], ...]], float],
    ) -> None:
        self.types = types
        self.samples = samples

    def value(self, name: str, **labels: object) -> float | None:
        """Sample value for an exact (name, labels) match."""
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        return self.samples.get((name, key))

    def family_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.types))


def _parse_labels(text: str | None) -> tuple[tuple[str, str], ...]:
    if not text:
        return ()
    pairs = []
    position = 0
    while position < len(text):
        match = _LABEL_PAIR.match(text, position)
        if match is None:
            raise ValueError(f"malformed label section: {text!r}")
        pairs.append(
            (match.group("name"), _unescape_label(match.group("value")))
        )
        position = match.end()
        if position < len(text):
            if text[position] != ",":
                raise ValueError(f"malformed label section: {text!r}")
            position += 1
    return tuple(sorted(pairs))


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> ParsedMetrics:
    """Parse (and validate) text exposition output.

    Raises:
        ValueError: On a malformed line, a sample whose family has no
            ``# TYPE`` declaration, a duplicate ``(name, labels)``
            series, or a histogram whose cumulative bucket counts
            decrease or whose ``+Inf`` bucket disagrees with ``_count``.
    """
    types: dict[str, str] = {}
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                COUNTER, GAUGE, HISTOGRAM,
            ):
                raise ValueError(f"line {line_number}: bad TYPE line {line!r}")
            if parts[2] in types:
                raise ValueError(
                    f"line {line_number}: duplicate TYPE for {parts[2]}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and comments.
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {line_number}: bad sample value {line!r}"
            ) from None
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base is not None and types.get(base) == HISTOGRAM:
                family = base
                break
        if family not in types:
            raise ValueError(
                f"line {line_number}: sample {name!r} precedes its TYPE "
                "declaration"
            )
        key = (name, labels)
        if key in samples:
            raise ValueError(
                f"line {line_number}: duplicate series {name}"
                f"{dict(labels)!r}"
            )
        samples[key] = value
    _validate_histograms(types, samples)
    return ParsedMetrics(types=types, samples=samples)


def _validate_histograms(
    types: dict[str, str],
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float],
) -> None:
    for family, kind in types.items():
        if kind != HISTOGRAM:
            continue
        # Group bucket samples by their non-le labels.
        buckets: dict[tuple, list[tuple[float, float]]] = {}
        for (name, labels), value in samples.items():
            if name != f"{family}_bucket":
                continue
            le = dict(labels).get("le")
            if le is None:
                raise ValueError(f"{name}: bucket sample without le label")
            rest = tuple(pair for pair in labels if pair[0] != "le")
            buckets.setdefault(rest, []).append((_parse_value(le), value))
        for rest, pairs in buckets.items():
            pairs.sort(key=lambda pair: pair[0])
            counts = [count for _, count in pairs]
            if counts != sorted(counts):
                raise ValueError(
                    f"{family}{dict(rest)!r}: cumulative bucket counts "
                    "decrease"
                )
            if not math.isinf(pairs[-1][0]):
                raise ValueError(
                    f"{family}{dict(rest)!r}: missing +Inf bucket"
                )
            total = samples.get((f"{family}_count", rest))
            if total is not None and total != pairs[-1][1]:
                raise ValueError(
                    f"{family}{dict(rest)!r}: +Inf bucket {pairs[-1][1]} "
                    f"!= _count {total}"
                )


def _json_default(value: object) -> object:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        return item()
    return str(value)


def to_json_lines(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot as JSON lines (one object per series)."""
    lines = []
    for series in snapshot.series:
        record: dict[str, object] = {
            "name": series.name,
            "kind": series.kind,
            "labels": dict(series.labels),
        }
        if series.kind == HISTOGRAM:
            record["buckets"] = [
                ["+Inf" if math.isinf(bound) else bound, count]
                for bound, count in series.buckets
            ]
            record["sum"] = series.sum
            record["count"] = series.count
        else:
            record["value"] = series.value
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def trace_to_json_lines(events: Iterable) -> Iterator[str]:
    """Stream trace events as JSONL records.

    Each yielded line is one event: ``{"time": ..., "kind": ...,
    "details": {...}}`` with sets and numpy scalars coerced to plain
    JSON values.
    """
    for event in events:
        yield json.dumps(
            {
                "time": event.time,
                "kind": event.kind,
                "details": dict(event.details),
            },
            sort_keys=True,
            default=_json_default,
        )
