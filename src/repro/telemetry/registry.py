"""A dependency-free metrics registry: counters, gauges, histograms.

This is the measurement core the whole simulation stack reports
through, and the surface a future network server will expose verbatim
on a ``/metrics`` endpoint.  Design constraints, in order:

* **No dependencies.**  The container bakes in numpy/scipy only; the
  registry is pure stdlib, so it can ship inside worker processes and
  CI smoke scripts without an import gamble.
* **Merge-safe snapshots.**  A :class:`MetricsRegistry` is mutable and
  thread-safe (one lock per registry); :meth:`MetricsRegistry.snapshot`
  freezes it into a :class:`MetricsSnapshot` of plain picklable tuples.
  Snapshots merge commutatively and associatively for counters and
  histograms (count- and sum-preserving — property-tested), which is
  what makes per-shard / per-process collection composable: every shard
  sub-round collects into its own registry, ships the snapshot back in
  its report, and the parent absorbs them in any order.
* **Fixed log-scale latency buckets.**  Histograms default to
  :data:`DEFAULT_LATENCY_BUCKETS` (powers of two from 0.5 ms to ~524 s)
  so independently-created histograms always merge, and so p50/p99
  estimates stay comparable across runs and machines.

Naming follows Prometheus conventions — ``*_total`` counters,
``*_seconds`` histograms — because the text exposition exporter
(:mod:`repro.telemetry.exporters`) pins that format.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import re
import threading
from collections.abc import Iterable, Mapping

from repro.errors import ConfigurationError

#: Fixed log-scale latency buckets: 0.5 ms doubling up to ~524 s.  One
#: shared geometry means any two latency histograms merge bucket-wise.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    5e-4 * 2.0**k for k in range(21)
)

#: Log-scale size buckets for cohort/population-shaped histograms.
COHORT_SIZE_BUCKETS: tuple[float, ...] = tuple(
    float(2**k) for k in range(13)
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Series kinds (also the exposition ``# TYPE`` values).
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _validate_labels(names: tuple[str, ...]) -> tuple[str, ...]:
    for name in names:
        if not _LABEL_NAME.match(name) or name == "le":
            raise ConfigurationError(f"invalid label name {name!r}")
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate label names in {names}")
    return tuple(names)


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing series (one labeled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; got increment {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A set-to-current-value series (one labeled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket distribution series (one labeled child).

    Buckets are defined by their (strictly increasing, finite) upper
    bounds; every observation also lands in an implicit ``+Inf``
    bucket, and the exact sum and count are tracked alongside, so
    merging histograms preserves both.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_inf", "_sum", "_count")

    def __init__(
        self, lock: threading.Lock, bounds: tuple[float, ...]
    ) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                "histogram bounds must be non-empty and strictly increasing"
            )
        if any(not math.isfinite(b) for b in bounds):
            raise ConfigurationError("histogram bounds must be finite")
        self._lock = lock
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * len(bounds)
        self._inf = 0  # observations above the last finite bound
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            index = bisect.bisect_left(self.bounds, value)
            if index < len(self.bounds):
                self._counts[index] += 1
            else:
                self._inf += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts, ``+Inf`` last."""
        return tuple(self._counts) + (self._inf,)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by bucket interpolation.

        Mirrors Prometheus's ``histogram_quantile``: the target rank is
        located in cumulative bucket counts and linearly interpolated
        within the bucket.  Observations above the last finite bound
        clamp to that bound.  Returns ``nan`` for an empty histogram.
        """
        if not 0 <= q <= 1:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return float("nan")
        rank = q * self._count
        cumulative = 0
        for index, count in enumerate(self._counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count:
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                return lower + (upper - lower) * (rank - previous) / count
        return self.bounds[-1]


@dataclasses.dataclass(frozen=True)
class SeriesSnapshot:
    """One frozen series: a (name, labels) cell with its value(s).

    ``value`` is set for counters/gauges; ``buckets`` (pairs of
    ``(upper_bound, non_cumulative_count)``, ``+Inf`` last), ``sum``
    and ``count`` for histograms.  Plain tuples throughout — picklable
    across process boundaries by construction.
    """

    name: str
    kind: str
    help: str
    labels: tuple[tuple[str, str], ...]
    value: float | None = None
    buckets: tuple[tuple[float, int], ...] | None = None
    sum: float | None = None
    count: int | None = None

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile of a histogram series."""
        if self.kind != HISTOGRAM or self.buckets is None:
            raise ConfigurationError(
                f"{self.name} is a {self.kind}, not a histogram"
            )
        if not self.count:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for index, (bound, bucket_count) in enumerate(self.buckets):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if not math.isfinite(bound):
                    return self.buckets[index - 1][0] if index else float("nan")
                lower = self.buckets[index - 1][0] if index else 0.0
                return lower + (bound - lower) * (rank - previous) / bucket_count
        return self.buckets[-2][0] if len(self.buckets) > 1 else float("nan")


def _merge_series(
    mine: SeriesSnapshot, theirs: SeriesSnapshot
) -> SeriesSnapshot:
    if mine.kind != theirs.kind:
        raise ConfigurationError(
            f"cannot merge series {mine.name}: kind {mine.kind} vs "
            f"{theirs.kind}"
        )
    help_text = mine.help or theirs.help
    if mine.kind == COUNTER:
        return dataclasses.replace(
            mine, help=help_text, value=(mine.value or 0) + (theirs.value or 0)
        )
    if mine.kind == GAUGE:
        # Right-biased: the later snapshot's reading wins (gauges state
        # a current value; summing them would be meaningless).
        return dataclasses.replace(mine, help=help_text, value=theirs.value)
    bounds_mine = tuple(b for b, _ in mine.buckets)
    bounds_theirs = tuple(b for b, _ in theirs.buckets)
    if bounds_mine != bounds_theirs:
        raise ConfigurationError(
            f"cannot merge histogram {mine.name}: bucket bounds differ"
        )
    return dataclasses.replace(
        mine,
        help=help_text,
        buckets=tuple(
            (bound, count_a + count_b)
            for (bound, count_a), (_, count_b) in zip(
                mine.buckets, theirs.buckets
            )
        ),
        sum=mine.sum + theirs.sum,
        count=mine.count + theirs.count,
    )


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, picklable view of a registry at one instant.

    Snapshots are the unit of cross-thread and cross-process metric
    transport: merge them (counters and histograms add, gauges take the
    later reading), relabel them (:meth:`with_labels` — how shard
    snapshots gain their ``shard`` label), and export them
    (:mod:`repro.telemetry.exporters`).
    """

    series: tuple[SeriesSnapshot, ...] = ()

    def merge(self, *others: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold other snapshots into a new one (self unchanged).

        Counter and histogram merging is commutative and associative
        (count/sum-preserving); gauge cells are right-biased.
        """
        table: dict[tuple[str, tuple[tuple[str, str], ...]], SeriesSnapshot]
        table = {(s.name, s.labels): s for s in self.series}
        for other in others:
            for series in other.series:
                key = (series.name, series.labels)
                existing = table.get(key)
                table[key] = (
                    series if existing is None
                    else _merge_series(existing, series)
                )
        return MetricsSnapshot(
            series=tuple(table[key] for key in sorted(table))
        )

    def with_labels(self, **labels: object) -> "MetricsSnapshot":
        """A copy with extra labels stamped onto every series.

        Existing labels win on collision — a shard cannot overwrite a
        label a series already carries.
        """
        extra = _label_key(labels)
        out = []
        for series in self.series:
            existing = dict(series.labels)
            merged = dict(extra)
            merged.update(existing)
            out.append(
                dataclasses.replace(series, labels=tuple(sorted(merged.items())))
            )
        return MetricsSnapshot(series=tuple(out))

    def get(self, name: str, **labels: object) -> SeriesSnapshot | None:
        """The exact series for (name, labels), or ``None``."""
        key = _label_key(labels)
        for series in self.series:
            if series.name == name and series.labels == key:
                return series
        return None

    def value(self, name: str, **labels: object) -> float | None:
        """Exact-match counter/gauge value, or ``None``."""
        series = self.get(name, **labels)
        return None if series is None else series.value

    def sum_values(self, name: str, **labels: object) -> float:
        """Sum of counter/gauge values over series matching a label
        subset (e.g. all phases of one wire counter)."""
        want = dict(_label_key(labels))
        total = 0.0
        for series in self.series:
            if series.name != name or series.value is None:
                continue
            have = dict(series.labels)
            if all(have.get(k) == v for k, v in want.items()):
                total += series.value
        return total

    def quantile(self, name: str, q: float, **labels: object) -> float:
        """Exact-match histogram quantile (``nan`` if absent/empty)."""
        series = self.get(name, **labels)
        if series is None:
            return float("nan")
        return series.quantile(q)

    def aggregate(self, name: str, **labels: object) -> SeriesSnapshot | None:
        """Merge every series of ``name`` matching a label subset into
        one series carrying just the queried labels — e.g. all shards'
        ``phase="advertise"`` latency histograms as one histogram.
        Counters add and histograms add bucket-wise; gauges are skipped
        (no single cross-series reading is meaningful).  Returns
        ``None`` when nothing matches.
        """
        want = _label_key(labels)
        want_map = dict(want)
        merged: SeriesSnapshot | None = None
        for series in self.series:
            if series.name != name or series.kind == GAUGE:
                continue
            have = dict(series.labels)
            if not all(have.get(k) == v for k, v in want_map.items()):
                continue
            candidate = dataclasses.replace(series, labels=want)
            merged = (
                candidate
                if merged is None
                else _merge_series(merged, candidate)
            )
        return merged

    def names(self) -> tuple[str, ...]:
        """Sorted distinct series names."""
        return tuple(sorted({series.name for series in self.series}))


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Merge any number of snapshots (order-independent for counters
    and histograms; empty input gives an empty snapshot)."""
    return MetricsSnapshot().merge(*snapshots)


class _Family:
    """One named metric with its kind, help text and labeled children."""

    __slots__ = ("name", "kind", "help", "bounds", "_lock", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        lock: threading.Lock,
        bounds: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.bounds = bounds
        self._lock = lock
        self._children: dict[tuple[tuple[str, str], ...], object] = {}

    def labels(self, **labels: object):
        """The child series for these label values (created on first
        use, memoised after)."""
        for label in labels:
            if not _LABEL_NAME.match(label) or label == "le":
                raise ConfigurationError(f"invalid label name {label!r}")
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == COUNTER:
                    child = Counter(self._lock)
                elif self.kind == GAUGE:
                    child = Gauge(self._lock)
                else:
                    child = Histogram(self._lock, self.bounds)
                self._children[key] = child
        return child

    # Unlabeled convenience: a family used without labels behaves as
    # its single anonymous child.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def _snapshot_series(self) -> list[SeriesSnapshot]:
        out = []
        for key in sorted(self._children):
            child = self._children[key]
            if self.kind == HISTOGRAM:
                bounds = child.bounds + (float("inf"),)
                out.append(
                    SeriesSnapshot(
                        name=self.name,
                        kind=self.kind,
                        help=self.help,
                        labels=key,
                        buckets=tuple(zip(bounds, child.bucket_counts())),
                        sum=child.sum,
                        count=child.count,
                    )
                )
            else:
                out.append(
                    SeriesSnapshot(
                        name=self.name,
                        kind=self.kind,
                        help=self.help,
                        labels=key,
                        value=child.value,
                    )
                )
        return out


class MetricsRegistry:
    """The mutable collection instruments report into.

    One registry per collection domain (one per simulation run; one per
    shard sub-round worker).  ``counter``/``gauge``/``histogram`` are
    idempotent get-or-create: asking twice for the same name returns
    the same family, asking with a conflicting kind (or conflicting
    histogram buckets) raises.  All mutation shares one lock, so
    threads may report concurrently and :meth:`snapshot` is consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        bounds: tuple[float, ...] | None = None,
    ) -> _Family:
        if not _METRIC_NAME.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, self._lock, bounds)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        if kind == HISTOGRAM and bounds is not None and (
            family.bounds != tuple(float(b) for b in bounds)
        ):
            raise ConfigurationError(
                f"histogram {name!r} already registered with different "
                "buckets"
            )
        return family

    def counter(self, name: str, help_text: str = "") -> _Family:
        """Get or create a counter family."""
        return self._family(name, COUNTER, help_text)

    def gauge(self, name: str, help_text: str = "") -> _Family:
        """Get or create a gauge family."""
        return self._family(name, GAUGE, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        """Get or create a histogram family with fixed bucket bounds."""
        return self._family(
            name, HISTOGRAM, help_text, tuple(float(b) for b in buckets)
        )

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every series into a picklable, mergeable snapshot."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        series: list[SeriesSnapshot] = []
        for family in families:
            series.extend(family._snapshot_series())
        return MetricsSnapshot(series=tuple(series))

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot into the live registry.

        The shard-merge path: counters add, histogram buckets add
        (bounds must match any existing family), gauges overwrite.
        Series arriving with labels the family has not seen simply
        create new children — label schemas are per-series, as in the
        exposition format itself.
        """
        for series in snapshot.series:
            labels = dict(series.labels)
            if series.kind == COUNTER:
                self.counter(series.name, series.help).labels(**labels).inc(
                    series.value or 0.0
                )
            elif series.kind == GAUGE:
                self.gauge(series.name, series.help).labels(**labels).set(
                    series.value or 0.0
                )
            else:
                bounds = tuple(
                    bound for bound, _ in series.buckets
                    if math.isfinite(bound)
                )
                child = self.histogram(
                    series.name, series.help, bounds
                ).labels(**labels)
                with self._lock:
                    for index, (_, count) in enumerate(series.buckets):
                        if index < len(child._counts):
                            child._counts[index] += count
                        else:
                            child._inf += count
                    child._sum += series.sum
                    child._count += series.count
