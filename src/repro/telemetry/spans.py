"""Spans: measure a region of code on both clocks at once.

Simulation code lives in two timelines — the deterministic simulated
clock (what a deployment *would* experience: upload latencies, phase
deadlines) and the wall clock (what this host actually spent computing).
A :class:`Span` records both; :func:`time_phase` is the context manager
the round drivers wrap each protocol phase in, observing the simulated
duration and the wall duration into two histograms as the block exits.

Spans deliberately never touch the RNG and only *read* the simulated
clock, so instrumented and uninstrumented runs stay bit-identical — a
property the integration tests pin via the engine's parameters digest.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.telemetry.registry import Histogram, _Family

if TYPE_CHECKING:  # Typing only: keeps telemetry import-cycle-free.
    from repro.simulation.clock import SimulatedClock


@dataclasses.dataclass
class Span:
    """One measured region, on the wall clock and (optionally) the
    simulated clock.

    Attributes:
        name: What was measured (e.g. a phase tag).
        wall_start/wall_end: ``time.perf_counter()`` endpoints.
        sim_start/sim_end: Simulated-clock endpoints (``None`` without
            a clock).
    """

    name: str
    wall_start: float = 0.0
    wall_end: float | None = None
    sim_start: float | None = None
    sim_end: float | None = None

    @property
    def wall_duration(self) -> float:
        """Elapsed wall seconds (so far, if the span is still open)."""
        end = self.wall_end if self.wall_end is not None else time.perf_counter()
        return end - self.wall_start

    @property
    def sim_duration(self) -> float | None:
        """Elapsed simulated seconds, or ``None`` without a clock."""
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start


@contextlib.contextmanager
def time_phase(
    name: str,
    clock: "SimulatedClock | None" = None,
    sim_histogram: "Histogram | _Family | None" = None,
    wall_histogram: "Histogram | _Family | None" = None,
) -> Iterator[Span]:
    """Measure the enclosed block as a :class:`Span`.

    On exit the simulated duration is observed into ``sim_histogram``
    (when a clock was given) and the wall duration into
    ``wall_histogram``.  Either histogram may be ``None`` — the span is
    still yielded for callers that only want the timing object.  Safe
    around ``await`` on the simulated clock: wall time then measures
    the real compute spent while simulated time advanced.
    """
    span = Span(
        name=name,
        wall_start=time.perf_counter(),
        sim_start=clock.now if clock is not None else None,
    )
    try:
        yield span
    finally:
        span.wall_end = time.perf_counter()
        if clock is not None:
            span.sim_end = clock.now
        duration = span.sim_duration
        if sim_histogram is not None and duration is not None:
            sim_histogram.observe(duration)
        if wall_histogram is not None:
            wall_histogram.observe(span.wall_duration)
