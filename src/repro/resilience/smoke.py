"""Chaos smoke: ``kill -9`` a live ``repro serve`` mid-round, restart
it on the same port and journal, and assert the recovered round is
indistinguishable from a fault-free one.

The scenario (the CI "chaos smoke" step, also runnable as
``repro chaos``):

1. start a journalled server subprocess on a free port;
2. drive a swarm of clients with deterministic dropouts *and*
   deliberate transient disconnects (retry/resume enabled);
3. poll the journal for the first committed ``share-keys`` phase, then
   ``SIGKILL`` the server — the masking phase is in flight;
4. restart the server on the same port with the same journal; it
   replays the committed phases, parks the cohort for the resume grace
   window, and finishes the round with the resumed clients;
5. assert the digest equals the in-memory reference for the same
   schedule, the journal charged *exactly one* epsilon increment, and
   the restarted server exited 0.

Kept out of :mod:`repro.resilience`'s public ``__init__`` on purpose:
it imports :mod:`repro.net`, which itself depends on the resilience
primitives — importing this module lazily (the CLI does) avoids any
cycle.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import socket
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = ["ChaosSmokeResult", "run_chaos_smoke"]

_BANNER = "secagg server listening"
_PHASE_COMMIT = '"phase": "share-keys"'


@dataclass
class ChaosSmokeResult:
    """Outcome of one kill/restart chaos run."""

    ok: bool
    digest: str | None
    expected_digest: str | None
    charge_records: int
    completed_clients: int
    resumes: int
    work_dir: str
    checks: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _subprocess_env() -> dict[str, str]:
    """Child env whose ``PYTHONPATH`` can import this repro package."""
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


async def _wait_for_line(
    path: Path,
    needle: str,
    deadline: float,
    *,
    proc: subprocess.Popen | None = None,
    what: str = "",
) -> None:
    loop = asyncio.get_running_loop()
    while True:
        if path.exists() and needle in path.read_text(encoding="utf-8"):
            return
        if proc is not None and proc.poll() is not None:
            raise RuntimeError(
                f"server exited (rc={proc.returncode}) before {what}"
            )
        if loop.time() > deadline:
            raise RuntimeError(f"timed out waiting for {what}")
        await asyncio.sleep(0.05)


def run_chaos_smoke(
    *,
    clients: int = 16,
    threshold: int | None = None,
    dropouts: int = 3,
    transient_disconnects: int = 2,
    dimension: int = 32,
    bits: int = 16,
    seed: int = 7,
    delay: float = 0.25,
    timeout: float = 180.0,
    work_dir: str | None = None,
    log: Callable[[str], None] | None = None,
) -> ChaosSmokeResult:
    """Run the kill/restart scenario; see the module docstring.

    ``work_dir=None`` uses a temp directory, deleted when every check
    passes; pass a path to keep the journal and server logs around.
    """
    # Imported lazily: repro.net pulls the asyncio service stack in,
    # and the CLI should not pay for it on unrelated subcommands.
    from repro.net import SwarmConfig, expected_digest, run_swarm

    resolved_threshold = (
        threshold if threshold is not None else max(2, clients // 2)
    )
    emit = log if log is not None else (lambda line: None)
    keep = work_dir is not None
    root = Path(work_dir) if keep else Path(tempfile.mkdtemp(prefix="chaos-"))
    root.mkdir(parents=True, exist_ok=True)
    journal = root / "rounds.journal"
    digest_out = root / "digest.txt"
    port = _free_port()
    env = _subprocess_env()

    def serve_cmd(log_name: str) -> tuple[list[str], Path]:
        log_path = root / log_name
        cmd = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1",
            "--port", str(port),
            "--metrics-port", "-1",
            "--cohort", str(clients),
            "--threshold", str(resolved_threshold),
            "--dimension", str(dimension),
            "--bits", str(bits),
            "--rounds", "1",
            "--phase-timeout", "60",
            "--join-timeout", "60",
            "--journal", str(journal),
            "--resume-grace", "30",
            "--round-epsilon", "1.0",
            "--digest-out", str(digest_out),
        ]
        return cmd, log_path

    def spawn(log_name: str) -> tuple[subprocess.Popen, Path]:
        cmd, log_path = serve_cmd(log_name)
        handle = open(log_path, "w", encoding="utf-8")
        proc = subprocess.Popen(
            cmd, stdout=handle, stderr=subprocess.STDOUT, env=env
        )
        handle.close()  # The child holds its own descriptor.
        return proc, log_path

    config = SwarmConfig(
        clients=clients,
        dimension=dimension,
        modulus=1 << bits,
        threshold=resolved_threshold,
        seed=seed,
        dropouts=dropouts,
        delay=delay,
        client_timeout=60.0,
        connect_timeout=10.0,
        max_retries=10,
        transient_disconnects=transient_disconnects,
    )
    reference = expected_digest(config)

    async def orchestrate() -> tuple[object, int, int]:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        first, first_log = spawn("server-1.log")
        emit(f"server 1: pid {first.pid} on port {port}")
        try:
            await _wait_for_line(
                first_log, _BANNER, deadline,
                proc=first, what="the server banner",
            )
            swarm = asyncio.create_task(
                run_swarm("127.0.0.1", port, config)
            )
            try:
                await _wait_for_line(
                    journal, _PHASE_COMMIT, deadline,
                    proc=first, what="the share-keys phase commit",
                )
            except RuntimeError:
                swarm.cancel()
                raise
            first.kill()  # SIGKILL: no cleanup, the journal is the truth
            first.wait()
            emit("killed server 1 after the share-keys commit "
                 "(masking phase in flight)")
        except BaseException:
            if first.poll() is None:
                first.kill()
                first.wait()
            raise

        second, second_log = spawn("server-2.log")
        emit(f"server 2: pid {second.pid}, recovering from {journal.name}")
        try:
            result = await asyncio.wait_for(
                swarm, max(1.0, deadline - loop.time())
            )
            rc = await asyncio.wait_for(
                asyncio.to_thread(second.wait),
                max(1.0, deadline - loop.time()),
            )
        except BaseException:
            if second.poll() is None:
                second.kill()
                second.wait()
            raise
        return result, rc, second_log.stat().st_size

    result = ChaosSmokeResult(
        ok=False,
        digest=None,
        expected_digest=reference,
        charge_records=0,
        completed_clients=0,
        resumes=0,
        work_dir=str(root),
    )

    def check(passed: bool, label: str) -> None:
        (result.checks if passed else result.failures).append(label)

    try:
        swarm_result, server_rc, _ = asyncio.run(orchestrate())
    except (RuntimeError, asyncio.TimeoutError) as error:
        result.failures.append(str(error))
        return result

    lines = journal.read_text(encoding="utf-8").splitlines()
    result.charge_records = sum(
        1 for line in lines if '"kind": "charge"' in line
    )
    if digest_out.exists():
        digests = digest_out.read_text(encoding="utf-8").split()
        result.digest = digests[-1] if digests else None
    result.completed_clients = swarm_result.count("completed")
    result.resumes = swarm_result.resumes

    expected_completed = clients - dropouts
    check(server_rc == 0, f"restarted server exited 0 (rc={server_rc})")
    check(
        result.completed_clients == expected_completed,
        f"{result.completed_clients}/{expected_completed} clients "
        "completed through the kill",
    )
    check(
        result.resumes >= transient_disconnects,
        f"{result.resumes} session resumptions (>= "
        f"{transient_disconnects} injected disconnects)",
    )
    check(
        result.digest == reference,
        f"digest matches the in-memory reference ({result.digest} vs "
        f"{reference})",
    )
    check(
        result.charge_records == 1,
        f"journal holds exactly one epsilon charge "
        f"({result.charge_records} found)",
    )
    result.ok = not result.failures
    if result.ok and not keep:
        shutil.rmtree(root, ignore_errors=True)
    return result
