"""Capped exponential backoff with deterministic jitter.

One :class:`RetryPolicy` drives every reconnect decision in the net
layer: the initial dial (so swarm clients no longer hang forever on a
dead server), mid-round reconnects before a ``Resume`` handshake, and
the chaos smoke's wait-for-restarted-server loop.  Jitter is drawn from
a caller-supplied ``random.Random`` so swarm runs stay reproducible —
the policy itself holds no hidden randomness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transport retries.

    ``delay(attempt)`` for attempt ``k`` (0-based) is
    ``min(max_delay, base_delay * multiplier**k)`` plus uniform jitter in
    ``[0, jitter * that)``.  ``max_retries`` bounds how many *re*-tries
    follow the first attempt; ``max_retries=0`` means fail fast after a
    single attempt.
    """

    max_retries: int = 4
    base_delay: float = 0.2
    max_delay: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.max_delay < self.base_delay:
            raise ConfigurationError("max_delay must be >= base_delay")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered via ``rng``."""
        if attempt < 0:
            raise ConfigurationError("attempt must be >= 0")
        base = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if rng is not None and self.jitter > 0.0:
            base += rng.uniform(0.0, self.jitter * base)
        return base

    def delays(self, rng: random.Random | None = None) -> list[float]:
        """The full backoff schedule, one entry per permitted retry."""
        return [self.delay(k, rng) for k in range(self.max_retries)]
