"""Declarative fault schedules and the invariants they must preserve.

A chaos schedule is a ``;``-separated string of faults, each scoped to
a protocol phase and optionally to one round (default: every round):

``kill@<phase>[:r<N>]``
    Kill the server before the phase commits, then restart it and let
    the round recover from the journal / replay state.
``abort@<phase>[:r<N>]``
    Kill the server before the phase commits with no restart — the
    round must abort cleanly (no partial aggregate, no charge beyond
    the configured abort policy).
``blackout:<K>@<phase>[:r<N>]``
    The last ``K`` cohort members go permanently dark at the phase —
    the shard-wide blackout fault.
``partition:<K>@<phase>/<T>[:r<N>]``
    The last ``K`` cohort members are partitioned for ``T`` seconds at
    the phase; they rejoin (and must still be counted exactly once) if
    the partition heals before the phase deadline.

Phases are named by their wire tags (``advertise``, ``share-keys``,
``masked-input``, ``unmask``).  Example::

    kill@masked-input:r2;partition:3@share-keys/1.5;blackout:2@unmask

The invariant checkers (:func:`check_invariants`) encode the
acceptance bar for every fault: a surviving round's aggregate is
exactly the survivors' sum (digest-equal to the fault-free reference
when participation matches), an aborted round releases no partial
aggregate, and cumulative epsilon is monotone with at most one charge
per round id.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.secagg.statemachine import PHASE_TAGS

__all__ = [
    "Blackout",
    "ChaosSchedule",
    "Partition",
    "ServerKill",
    "check_invariants",
    "parse_chaos",
]

_TAG_TO_PHASE = {tag: phase for phase, tag in PHASE_TAGS.items()}


def _parse_phase(tag: str) -> int:
    try:
        return _TAG_TO_PHASE[tag]
    except KeyError:
        raise ConfigurationError(
            f"unknown phase {tag!r}; expected one of "
            f"{sorted(_TAG_TO_PHASE)}"
        ) from None


@dataclass(frozen=True)
class ServerKill:
    """Kill the server before committing ``phase``; restart if asked."""

    phase: int
    round_index: int | None = None
    restart: bool = True


@dataclass(frozen=True)
class Blackout:
    """The last ``clients`` cohort members go dark at ``phase``."""

    phase: int
    clients: int
    round_index: int | None = None


@dataclass(frozen=True)
class Partition:
    """The last ``clients`` cohort members stall ``duration`` seconds."""

    phase: int
    clients: int
    duration: float
    round_index: int | None = None


Fault = ServerKill | Blackout | Partition

_ROUND_SUFFIX = re.compile(r"^(?P<body>.*?)(?::r(?P<round>\d+))?$")


def _parse_fault(spec: str) -> Fault:
    match = _ROUND_SUFFIX.match(spec.strip())
    assert match is not None
    body = match.group("body").strip()
    round_index = (
        int(match.group("round")) if match.group("round") is not None else None
    )

    if body.startswith(("kill@", "abort@")):
        kind, _, tag = body.partition("@")
        return ServerKill(
            phase=_parse_phase(tag),
            round_index=round_index,
            restart=kind == "kill",
        )
    if body.startswith("blackout:"):
        rest = body[len("blackout:"):]
        count, sep, tag = rest.partition("@")
        if not sep or not count.isdigit():
            raise ConfigurationError(f"malformed blackout fault: {spec!r}")
        return Blackout(
            phase=_parse_phase(tag),
            clients=int(count),
            round_index=round_index,
        )
    if body.startswith("partition:"):
        rest = body[len("partition:"):]
        count, sep, tail = rest.partition("@")
        tag, slash, duration = tail.partition("/")
        if not sep or not slash or not count.isdigit():
            raise ConfigurationError(f"malformed partition fault: {spec!r}")
        try:
            seconds = float(duration)
        except ValueError:
            raise ConfigurationError(
                f"malformed partition duration in {spec!r}"
            ) from None
        if seconds < 0:
            raise ConfigurationError("partition duration must be >= 0")
        return Partition(
            phase=_parse_phase(tag),
            clients=int(count),
            duration=seconds,
            round_index=round_index,
        )
    raise ConfigurationError(
        f"unknown fault {spec!r}; expected kill@/abort@/blackout:/partition:"
    )


@dataclass(frozen=True)
class ChaosSchedule:
    """A parsed fault schedule, queryable per round."""

    faults: tuple[Fault, ...]
    source: str

    def for_round(self, round_index: int) -> tuple[Fault, ...]:
        """Faults that apply to 1-based round ``round_index``."""
        return tuple(
            fault
            for fault in self.faults
            if fault.round_index is None or fault.round_index == round_index
        )

    def kill(self, round_index: int) -> ServerKill | None:
        for fault in self.for_round(round_index):
            if isinstance(fault, ServerKill):
                return fault
        return None

    def blackouts(self, round_index: int) -> tuple[Blackout, ...]:
        return tuple(
            fault
            for fault in self.for_round(round_index)
            if isinstance(fault, Blackout)
        )

    def partitions(self, round_index: int) -> tuple[Partition, ...]:
        return tuple(
            fault
            for fault in self.for_round(round_index)
            if isinstance(fault, Partition)
        )


def parse_chaos(schedule: str) -> ChaosSchedule:
    """Parse a ``;``-separated fault schedule string."""
    specs = [part for part in schedule.split(";") if part.strip()]
    if not specs:
        raise ConfigurationError("empty chaos schedule")
    faults = tuple(_parse_fault(spec) for spec in specs)
    kills_per_round: dict[int | None, int] = {}
    for fault in faults:
        if isinstance(fault, ServerKill):
            key = fault.round_index
            kills_per_round[key] = kills_per_round.get(key, 0) + 1
    if any(count > 1 for count in kills_per_round.values()) or (
        None in kills_per_round and len(kills_per_round) > 1
    ):
        raise ConfigurationError(
            "at most one kill/abort fault may apply to any round"
        )
    return ChaosSchedule(faults=faults, source=schedule)


def check_invariants(
    records: Sequence,
    reference: Sequence | None = None,
) -> list[str]:
    """Check chaos invariants over per-round records.

    Works on any records exposing ``index``, ``included``, ``aborted``
    and cumulative ``epsilon`` (the shape of
    :class:`~repro.simulation.engine.RoundRecord`), so both the
    simulated engine and net-side summaries can be audited.  Returns a
    list of human-readable violations (empty == all invariants hold):

    * an aborted round must release no partial aggregate
      (``included`` empty);
    * cumulative epsilon is monotone non-decreasing (no un-charging,
      no double-charging rollbacks);
    * if ``config.verify_aggregate`` ran, every surviving round's
      aggregate matched the survivors' true sum exactly;
    * against a fault-free ``reference`` run: any surviving round with
      identical participation must have included exactly the same
      clients — the digest-equality precondition.
    """
    violations: list[str] = []
    last_epsilon: float | None = None
    for record in records:
        if record.aborted and record.included:
            violations.append(
                f"round {record.index}: aborted but released a partial "
                f"aggregate over {sorted(record.included)}"
            )
        matches = getattr(record, "aggregate_matches", None)
        if not record.aborted and matches is False:
            violations.append(
                f"round {record.index}: aggregate does not equal the "
                "survivors' true sum"
            )
        epsilon = float(record.epsilon)
        if last_epsilon is not None and epsilon == epsilon:  # skip nan
            if last_epsilon == last_epsilon and epsilon < last_epsilon:
                violations.append(
                    f"round {record.index}: cumulative epsilon decreased "
                    f"({last_epsilon} -> {epsilon})"
                )
        last_epsilon = epsilon

    if reference is not None:
        by_index = {record.index: record for record in reference}
        for record in records:
            ref = by_index.get(record.index)
            if ref is None or record.aborted or ref.aborted:
                continue
            if set(record.cohort) == set(ref.cohort) and set(
                record.dropped
            ) == set(ref.dropped):
                if set(record.included) != set(ref.included):
                    violations.append(
                        f"round {record.index}: same cohort and dropouts "
                        "as the fault-free reference but different "
                        "included set"
                    )
    return violations


def survivors_after(
    cohort: Sequence[int], faults: Iterable[Fault]
) -> frozenset[int]:
    """Cohort members a blackout schedule leaves alive (partitions heal)."""
    dark: set[int] = set()
    ordered = list(cohort)
    for fault in faults:
        if isinstance(fault, Blackout) and fault.clients > 0:
            dark.update(ordered[-fault.clients:])
    return frozenset(ordered) - dark
