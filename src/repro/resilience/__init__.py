"""``repro.resilience`` — crash-safe rounds for the real-socket service.

Three pillars, all stdlib-only:

* :mod:`~repro.resilience.retry` — a shared :class:`RetryPolicy` with
  capped exponential backoff and deterministic jitter, used by the net
  client for reconnects and by the swarm for dial retries.
* :mod:`~repro.resilience.journal` — an append-only JSONL round journal
  with fsync'd phase commits, plus a :class:`DurableLedger` whose
  epsilon charges are idempotent by round id, and a recovery parser
  that reconstructs an interrupted round from its committed uploads.
* :mod:`~repro.resilience.chaos` — declarative fault schedules
  (server kill/restart at phase X, client partitions, shard-wide
  blackouts) runnable against both the simulated engine
  (``SimulationConfig.chaos``) and the real-socket service, with
  invariant checkers for digest-equality, clean aborts, and monotone
  single-charge accounting.
"""

from repro.resilience.chaos import (
    Blackout,
    ChaosSchedule,
    Partition,
    ServerKill,
    check_invariants,
    parse_chaos,
)
from repro.resilience.journal import (
    DurableLedger,
    JournalRecovery,
    RoundJournal,
    recover_journal,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "Blackout",
    "ChaosSchedule",
    "DurableLedger",
    "JournalRecovery",
    "Partition",
    "RetryPolicy",
    "RoundJournal",
    "ServerKill",
    "check_invariants",
    "parse_chaos",
    "recover_journal",
]
