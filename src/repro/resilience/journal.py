"""Durable round checkpointing: append-only JSONL journal + ledger.

The net server journals four record kinds, each one JSON object per
line, fsync'd before the round proceeds:

``round-start``
    ``{"kind": "round-start", "round": id, "cohort": [...], "params": {...}}``
    — written when the cohort is gathered, before any phase runs.
``phase``
    ``{"kind": "phase", "round": id, "phase": tag, "uploads": {client: b64}}``
    — written after a phase *commits* (its uploads were ingested and the
    server session advanced).  Because :class:`~repro.secagg.bonawitz.
    BonawitzServer` draws no randomness, replaying the committed uploads
    through a fresh :class:`~repro.secagg.statemachine.ServerSession`
    reconstructs the server state — and every emitted delivery —
    byte-identically.
``charge``
    ``{"kind": "charge", "round": id, "epsilon": x}`` — at most one per
    round id; :class:`DurableLedger` refuses duplicates, which is what
    makes a killed-and-restarted server unable to double-charge.
``round-end``
    ``{"kind": "round-end", "round": id, "outcome": ..., "digest": ...}``

Recovery (:func:`recover_journal`) scans the file, tolerates a torn
final line (the crash may have landed mid-write; an uncommitted suffix
is discarded), and reports the interrupted round — if any — with its
committed phase uploads so the server can resume it or cleanly abort
without re-charging.
"""

from __future__ import annotations

import base64
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "DurableLedger",
    "InterruptedRound",
    "JournalRecovery",
    "RoundJournal",
    "recover_journal",
]


class RoundJournal:
    """Append-only JSONL writer with per-record flush + fsync."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, record: Mapping[str, Any]) -> None:
        if self._handle.closed:
            raise ConfigurationError("journal is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def round_start(
        self,
        round_id: int,
        cohort: list[int],
        params: Mapping[str, Any],
    ) -> None:
        self.append(
            {
                "kind": "round-start",
                "round": round_id,
                "cohort": sorted(cohort),
                "params": dict(params),
            }
        )

    def phase_commit(
        self, round_id: int, phase: str, uploads: Mapping[int, bytes]
    ) -> None:
        encoded = {
            str(client): base64.b64encode(data).decode("ascii")
            for client, data in sorted(uploads.items())
        }
        self.append(
            {
                "kind": "phase",
                "round": round_id,
                "phase": phase,
                "uploads": encoded,
            }
        )

    def charge(self, round_id: int, epsilon: float) -> None:
        self.append({"kind": "charge", "round": round_id, "epsilon": epsilon})

    def round_end(
        self, round_id: int, outcome: str, digest: str | None = None
    ) -> None:
        self.append(
            {
                "kind": "round-end",
                "round": round_id,
                "outcome": outcome,
                "digest": digest,
            }
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RoundJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass(frozen=True)
class InterruptedRound:
    """A round that started but never reached ``round-end``."""

    round_id: int
    cohort: tuple[int, ...]
    params: dict[str, Any]
    #: Committed phases in journal order: ``(phase_tag, {client: datagram})``.
    phases: tuple[tuple[str, dict[int, bytes]], ...]


@dataclass(frozen=True)
class JournalRecovery:
    """Everything a restarted server needs from a prior journal."""

    next_round_id: int
    charged: dict[int, float] = field(default_factory=dict)
    completed: tuple[int, ...] = ()
    aborted: tuple[int, ...] = ()
    interrupted: InterruptedRound | None = None

    @property
    def cumulative_epsilon(self) -> float:
        return float(sum(self.charged.values()))


def recover_journal(path: str | os.PathLike[str]) -> JournalRecovery:
    """Parse a journal, tolerating a torn trailing line."""
    journal_path = Path(path)
    if not journal_path.exists():
        return JournalRecovery(next_round_id=0)

    records: list[dict[str, Any]] = []
    with open(journal_path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # torn final write from the crash; discard
            raise ConfigurationError(
                f"corrupt journal record at {journal_path}:{lineno + 1}"
            )
        records.append(record)

    charged: dict[int, float] = {}
    completed: list[int] = []
    aborted: list[int] = []
    open_rounds: dict[int, dict[str, Any]] = {}
    max_round = -1
    for record in records:
        round_id = int(record["round"])
        max_round = max(max_round, round_id)
        kind = record["kind"]
        if kind == "round-start":
            open_rounds[round_id] = {
                "cohort": tuple(int(c) for c in record["cohort"]),
                "params": dict(record["params"]),
                "phases": [],
            }
        elif kind == "phase":
            state = open_rounds.get(round_id)
            if state is not None:
                uploads = {
                    int(client): base64.b64decode(data)
                    for client, data in record["uploads"].items()
                }
                state["phases"].append((str(record["phase"]), uploads))
        elif kind == "charge":
            # Idempotent by round id: the first charge wins; replays of
            # the same id (which a correct server never writes) are
            # ignored rather than summed.
            charged.setdefault(round_id, float(record["epsilon"]))
        elif kind == "round-end":
            open_rounds.pop(round_id, None)
            if record["outcome"] == "completed":
                completed.append(round_id)
            else:
                aborted.append(round_id)

    interrupted: InterruptedRound | None = None
    if open_rounds:
        # At most one round is in flight at a time; if a corrupt journal
        # claims several, recover the latest and treat the rest as lost.
        round_id = max(open_rounds)
        state = open_rounds[round_id]
        interrupted = InterruptedRound(
            round_id=round_id,
            cohort=state["cohort"],
            params=state["params"],
            phases=tuple(
                (tag, dict(uploads)) for tag, uploads in state["phases"]
            ),
        )

    return JournalRecovery(
        next_round_id=max_round + 1,
        charged=charged,
        completed=tuple(completed),
        aborted=tuple(aborted),
        interrupted=interrupted,
    )


class DurableLedger:
    """Epsilon ledger whose charges are idempotent by round id.

    Wraps a :class:`RoundJournal` (optional — ``None`` keeps the ledger
    purely in memory, used by tests and the simulated engine's chaos
    checks) and refuses to charge the same round twice, which is the
    property that makes a kill-and-restart unable to double-spend the
    privacy budget.
    """

    def __init__(
        self,
        journal: RoundJournal | None = None,
        charged: Mapping[int, float] | None = None,
    ) -> None:
        self._journal = journal
        self._charged: dict[int, float] = dict(charged or {})

    def charge(self, round_id: int, epsilon: float) -> bool:
        """Charge ``epsilon`` for ``round_id``; False if already charged."""
        if epsilon < 0:
            raise ConfigurationError("epsilon charge must be >= 0")
        if round_id in self._charged:
            return False
        if self._journal is not None:
            self._journal.charge(round_id, epsilon)
        self._charged[round_id] = float(epsilon)
        return True

    def charged(self, round_id: int) -> bool:
        return round_id in self._charged

    @property
    def charges(self) -> dict[int, float]:
        return dict(self._charged)

    @property
    def epsilon(self) -> float:
        return float(sum(self._charged.values()))
