"""Communication-cost model for the bitwidth/utility trade-off.

The paper's central experimental axis is the per-dimension communication
constraint ``m`` ("a larger m ... increases the communication cost,
slowing down the aggregation process ... especially with a
communication-intensive secure aggregation protocol", Section 4).  This
module turns that discussion into numbers: bytes uploaded per client per
round, the Bonawitz protocol's per-round overhead, and whole-run totals
— so the ablation benchmarks can report *accuracy per megabyte*, the
quantity a deployment actually optimises.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError

#: Bytes of one Diffie-Hellman public key (Oakley group 2: 1024 bits).
DH_PUBLIC_KEY_BYTES = 128

#: Bytes of one sealed Shamir share envelope (Section's payload layout:
#: 4 + 16 + 2 + 16 * ceil(1024/60) limbs for the key share).
SHARE_ENVELOPE_BYTES = 22 + 16 * math.ceil(1024 / 60)

#: Bytes of one Shamir share revealed at unmasking (point + value).
UNMASK_SHARE_BYTES = 20


def payload_bits(dimension: int, modulus: int) -> int:
    """Bits of one masked-input vector: ``d * ceil(log2 m)``.

    Args:
        dimension: Vector length ``d`` (after Walsh-Hadamard padding).
        modulus: The group modulus ``m``.

    Raises:
        ConfigurationError: On non-positive dimension or modulus < 2.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    if modulus < 2:
        raise ConfigurationError(f"modulus must be >= 2, got {modulus}")
    return dimension * math.ceil(math.log2(modulus))


def client_upload_bytes(dimension: int, modulus: int) -> int:
    """Bytes of the round-2 masked input one client uploads."""
    return math.ceil(payload_bits(dimension, modulus) / 8)


def central_upload_bytes(dimension: int) -> int:
    """Bytes a *centralised* DPSGD client would upload (float32 gradient).

    The centralised baseline has no modulus constraint; its natural wire
    format is a float32 per dimension.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    return 4 * dimension


@dataclasses.dataclass(frozen=True)
class SecAggRoundCost:
    """Per-client byte counts of one Bonawitz protocol execution.

    Attributes:
        advertise: Round 0 — two DH public keys.
        share_keys: Round 1 — one sealed envelope per peer.
        masked_input: Round 2 — the ``d``-vector over ``Z_m``.
        unmask: Round 3 — one revealed share per peer.
    """

    advertise: int
    share_keys: int
    masked_input: int
    unmask: int

    @property
    def total(self) -> int:
        """Total upload bytes per client per round."""
        return (
            self.advertise + self.share_keys + self.masked_input + self.unmask
        )

    @property
    def overhead_fraction(self) -> float:
        """Protocol bytes as a fraction of the total (0 when the masked
        input dominates — the large-``d`` regime the paper targets)."""
        protocol = self.advertise + self.share_keys + self.unmask
        return protocol / self.total if self.total else 0.0


def bonawitz_round_cost(
    num_clients: int, dimension: int, modulus: int
) -> SecAggRoundCost:
    """Per-client communication of one full Bonawitz round.

    Args:
        num_clients: Participants ``n`` in the aggregation.
        dimension: Vector length ``d``.
        modulus: Group modulus ``m``.

    Returns:
        The per-round cost breakdown; the masked input is ``O(d log m)``
        and the protocol overhead ``O(n)``, matching the protocol's
        published complexity.
    """
    if num_clients < 2:
        raise ConfigurationError(
            f"num_clients must be >= 2, got {num_clients}"
        )
    return SecAggRoundCost(
        advertise=2 * DH_PUBLIC_KEY_BYTES,
        share_keys=num_clients * SHARE_ENVELOPE_BYTES,
        masked_input=client_upload_bytes(dimension, modulus),
        unmask=num_clients * UNMASK_SHARE_BYTES,
    )


@dataclasses.dataclass(frozen=True)
class TrainingCommunication:
    """Whole-run communication of an FL training job.

    Attributes:
        rounds: Training rounds ``T``.
        expected_batch: Expected participants per round ``|B|``.
        per_client_round_bytes: Upload per participating client per round.
        total_bytes: Expected total client-to-server upload over the run.
    """

    rounds: int
    expected_batch: int
    per_client_round_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.rounds * self.expected_batch * self.per_client_round_bytes

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / 2**20


def training_communication(
    dimension: int,
    modulus: int | None,
    rounds: int,
    expected_batch: int,
    include_protocol: bool = False,
) -> TrainingCommunication:
    """Expected upload volume of a full training run.

    Args:
        dimension: Model dimension ``d`` (padded).
        modulus: Group modulus ``m``; ``None`` means the centralised
            float baseline.
        rounds: Training rounds ``T``.
        expected_batch: Expected participants per round.
        include_protocol: Add the Bonawitz per-round protocol overhead
            (keys, shares, unmasking) on top of the payload.

    Returns:
        The run's communication summary.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    if expected_batch < 1:
        raise ConfigurationError(
            f"expected_batch must be >= 1, got {expected_batch}"
        )
    if modulus is None:
        per_round = central_upload_bytes(dimension)
    elif include_protocol:
        per_round = bonawitz_round_cost(
            max(expected_batch, 2), dimension, modulus
        ).total
    else:
        per_round = client_upload_bytes(dimension, modulus)
    return TrainingCommunication(
        rounds=rounds,
        expected_batch=expected_batch,
        per_client_round_bytes=per_round,
    )


def compression_ratio(dimension: int, modulus: int) -> float:
    """How much smaller the ``Z_m`` wire format is than float32.

    The paper's headline operating point ``m = 2^8`` gives ratio 4 (one
    byte per parameter versus four).
    """
    return central_upload_bytes(dimension) / client_upload_bytes(
        dimension, modulus
    )
