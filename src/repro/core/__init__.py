"""The paper's core contribution: SMM, DGM, clipping, encoding, calibration."""

from repro.core.calibration import (
    AccountingSpec,
    CalibrationResult,
    calibrate_noise,
    epsilon_for_curve,
)
from repro.core.client import GradientEncoder, skellam_encoder
from repro.core.communication import (
    SecAggRoundCost,
    TrainingCommunication,
    bonawitz_round_cost,
    central_upload_bytes,
    client_upload_bytes,
    compression_ratio,
    payload_bits,
    training_communication,
)
from repro.core.clipping import (
    clip_gradient,
    clip_linf_ceiling,
    invert_sensitivity_helper,
    mixture_sensitivity,
    sensitivity_helper,
)
from repro.core.dgm import (
    dgm_perturb,
    discrete_gaussian_encoder,
    round_sigma_up,
)
from repro.core.server import GradientDecoder
from repro.core.skellam_mixture import (
    estimate_sum,
    estimate_sum_1d,
    mixture_variance,
    smm_perturb,
    smm_perturb_exact,
)

__all__ = [
    "AccountingSpec",
    "CalibrationResult",
    "GradientDecoder",
    "GradientEncoder",
    "SecAggRoundCost",
    "TrainingCommunication",
    "bonawitz_round_cost",
    "calibrate_noise",
    "central_upload_bytes",
    "client_upload_bytes",
    "compression_ratio",
    "payload_bits",
    "training_communication",
    "clip_gradient",
    "clip_linf_ceiling",
    "dgm_perturb",
    "discrete_gaussian_encoder",
    "epsilon_for_curve",
    "estimate_sum",
    "estimate_sum_1d",
    "invert_sensitivity_helper",
    "mixture_sensitivity",
    "mixture_variance",
    "round_sigma_up",
    "sensitivity_helper",
    "skellam_encoder",
    "smm_perturb",
    "smm_perturb_exact",
]
