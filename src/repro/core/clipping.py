"""Mixture-sensitivity clipping (Algorithm 5 of the paper).

The privacy guarantee of dSMM (Corollary 1) requires each participant's
vector ``g`` to satisfy two constraints:

* ``ceil(|g_j|) <= Delta_inf`` for every coordinate (L-infinity), and
* ``sum_j phi(g_j) <= c`` where ``phi(x) = |x|^2 + p - p^2`` with
  ``p = |x| - floor(|x|)`` (Eq. (4), the *mixture sensitivity*).

Writing ``|x| = k + p`` with ``k = floor(|x|)`` gives the identity
``phi(x) = k^2 + p (2k + 1)``, so ``phi`` maps ``[k, k+1)`` monotonically
onto ``[k^2, (k+1)^2)``.  Algorithm 5 exploits this: build the helper
vector ``v_j = sign(g_j) * phi(g_j)``, L1-clip ``v`` to ``c`` (note
``||v||_1 = sum_j phi(g_j)`` is exactly the quantity Eq. (4) bounds),
then invert ``phi`` per coordinate — ``k' = floor(sqrt(|v_j|))``,
``p' = (|v_j| - k'^2) / (2k' + 1)`` — and finally clip each coordinate's
magnitude so its *ceiling* respects ``Delta_inf``.

(The paper's line 7, ``p' = y^{2g'+1}``, is a typesetting garble of this
inverse; see DESIGN.md §6.)
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import ClipConfig
from repro.errors import ConfigurationError


def mixture_sensitivity(values: np.ndarray) -> float:
    """The Eq. (4) sensitivity ``sum_j |x_j|^2 + p_j - p_j^2`` of a vector.

    Args:
        values: Real-valued vector (any shape; summed over all entries).

    Returns:
        The scalar mixture sensitivity.
    """
    magnitudes = np.abs(np.asarray(values, dtype=np.float64))
    fractional = magnitudes - np.floor(magnitudes)
    return float(np.sum(magnitudes**2 + fractional - fractional**2))


def sensitivity_helper(values: np.ndarray) -> np.ndarray:
    """The signed helper vector ``v`` of Algorithm 5 line 3.

    ``v_j = sign(g_j) * (|g_j|^2 + p_j - p_j^2)`` with the convention
    ``sign(0) = +1`` (the paper defines ``0/0 = 1``).
    """
    values = np.asarray(values, dtype=np.float64)
    signs = np.where(values >= 0, 1.0, -1.0)
    magnitudes = np.abs(values)
    fractional = magnitudes - np.floor(magnitudes)
    return signs * (magnitudes**2 + fractional - fractional**2)


def invert_sensitivity_helper(helper: np.ndarray) -> np.ndarray:
    """Invert the helper map: recover ``g`` from ``v`` (Alg. 5 lines 5-8).

    For ``|v| in [k^2, (k+1)^2)`` the inverse is ``|g| = k + p'`` with
    ``k = floor(sqrt(|v|))`` and ``p' = (|v| - k^2) / (2k + 1)``.
    """
    helper = np.asarray(helper, dtype=np.float64)
    signs = np.where(helper >= 0, 1.0, -1.0)
    magnitudes = np.abs(helper)
    integer_parts = np.floor(np.sqrt(magnitudes))
    # Guard against floor(sqrt(k^2)) landing at k-1 from float rounding.
    integer_parts = np.where(
        (integer_parts + 1.0) ** 2 <= magnitudes, integer_parts + 1.0, integer_parts
    )
    fractional_parts = (magnitudes - integer_parts**2) / (2.0 * integer_parts + 1.0)
    return signs * (integer_parts + fractional_parts)


def clip_linf_ceiling(values: np.ndarray, delta_inf: float) -> np.ndarray:
    """Clip magnitudes so that ``ceil(|g_j|) <= Delta_inf`` (Alg. 5 line 10).

    Clipping at ``Delta_inf`` itself is insufficient when ``Delta_inf`` is
    fractional (``|g| = 2.3 <= 2.5`` but ``ceil = 3 > 2.5``), so magnitudes
    are clipped at ``floor(Delta_inf)`` — the paper's own example
    ("for Delta_inf = 1 and x = -1.9, we simply increase x to -1").
    """
    if not delta_inf > 0:
        raise ConfigurationError(f"delta_inf must be positive, got {delta_inf}")
    values = np.asarray(values, dtype=np.float64)
    signs = np.where(values >= 0, 1.0, -1.0)
    bound = math.floor(delta_inf)
    return signs * np.minimum(np.abs(values), bound)


def clip_gradient(values: np.ndarray, clip: ClipConfig) -> np.ndarray:
    """Run the full Algorithm 5 clip on one vector (or batch of rows).

    Args:
        values: Real vector ``(d,)`` or batch ``(n, d)``; each row is
            clipped independently.
        clip: The thresholds ``c`` and ``Delta_inf``.

    Returns:
        Clipped array of the same shape; every row satisfies Eq. (4) with
        bound ``c`` and ``ceil(|.|) <= Delta_inf``.
    """
    values = np.asarray(values, dtype=np.float64)
    single_vector = values.ndim == 1
    batch = np.atleast_2d(values)
    helper = sensitivity_helper(batch)
    l1_norms = np.abs(helper).sum(axis=1, keepdims=True)
    scales = np.ones_like(l1_norms)
    np.divide(clip.c, l1_norms, out=scales, where=l1_norms > clip.c)
    clipped_helper = helper * scales
    recovered = invert_sensitivity_helper(clipped_helper)
    result = clip_linf_ceiling(recovered, clip.delta_inf)
    return result[0] if single_vector else result
