"""Participant-side gradient encoder (Algorithm 4 of the paper).

The encoder turns a private real-valued gradient into a bounded integer
message for SecAgg:

1. **rotate** — ``g <- H_d D_xi g`` with the shared public rotation
   (flattens the vector so no coordinate dominates; bounds overflow),
2. **scale** — ``g <- gamma * g`` (finer quantisation for larger gamma),
3. **clip** — Algorithm 5 (bounds the mixture sensitivity ``c`` and the
   per-coordinate ceiling ``Delta_inf``),
4. **perturb** — the Skellam mixture (or, for DGM, the discrete Gaussian
   mixture; the noise sampler is injected), and
5. **wrap** — reduce each coordinate modulo ``m``.

The same class encodes a *batch* of participants' gradients at once (one
row per participant), which is how the vectorised experiment pipelines
call it; the per-row semantics are identical to Algorithm 4.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.config import ClipConfig, CompressionConfig
from repro.core.clipping import clip_gradient
from repro.errors import ConfigurationError
from repro.linalg.hadamard import RandomRotation
from repro.linalg.modular import encode_mod
from repro.sampling.fast import bernoulli_round, skellam_noise

#: A mixture noise sampler: (shape, rng) -> integer noise array.
NoiseSampler = Callable[[tuple[int, ...], np.random.Generator], np.ndarray]


@dataclasses.dataclass(frozen=True)
class GradientEncoder:
    """Algorithm 4: rotate, scale, clip, mixture-perturb, wrap mod m.

    Attributes:
        rotation: The shared public random rotation (also held by the
            server for decoding).
        compression: Modulus ``m`` and scale ``gamma``.
        clip: Mixture clipping thresholds ``c`` and ``Delta_inf``.
        noise: Sampler for the integer noise added on top of the
            Bernoulli-rounded value; defaults (via
            :func:`skellam_encoder`) to ``Sk(lam, lam)``.
    """

    rotation: RandomRotation
    compression: CompressionConfig
    clip: ClipConfig
    noise: NoiseSampler

    def prepare(self, gradients: np.ndarray) -> np.ndarray:
        """Rotate, scale and clip (lines 1-3) without perturbing.

        Exposed separately so tests and the error analysis can inspect the
        exact pre-noise values.

        Args:
            gradients: ``(d,)`` or ``(n, d)`` real array (un-padded width).

        Returns:
            Clipped array of padded width.
        """
        rotated = self.rotation.forward(np.asarray(gradients, dtype=np.float64))
        scaled = self.compression.gamma * rotated
        return clip_gradient(scaled, self.clip)

    def encode(
        self, gradients: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Full Algorithm 4: produce SecAgg-ready messages in ``Z_m``.

        Args:
            gradients: ``(d,)`` or ``(n, d)`` real array.
            rng: Numpy random generator for the Bernoulli and noise draws.

        Returns:
            Integer array of padded width with entries in ``[0, m)``.
        """
        clipped = self.prepare(gradients)
        rounded = bernoulli_round(clipped, rng)
        perturbed = rounded + self.noise(rounded.shape, rng)
        return encode_mod(perturbed, self.compression.modulus)


def skellam_encoder(
    rotation: RandomRotation,
    compression: CompressionConfig,
    clip: ClipConfig,
    lam: float,
) -> GradientEncoder:
    """Build the SMM participant encoder with ``Sk(lam, lam)`` noise.

    Args:
        rotation: Shared public rotation.
        compression: Wire format (``m``, ``gamma``).
        clip: Mixture clipping thresholds.
        lam: Per-participant Skellam parameter.

    Returns:
        A ready-to-use :class:`GradientEncoder`.
    """
    if not lam > 0:
        raise ConfigurationError(f"lambda must be positive, got {lam}")
    return GradientEncoder(
        rotation=rotation,
        compression=compression,
        clip=clip,
        noise=lambda shape, rng: skellam_noise(lam, shape, rng),
    )
