"""Server-side gradient-sum decoder (Algorithm 6 of the paper).

The server receives the modular sum ``z = sum_i z_i mod m`` from SecAgg
and inverts the participant-side encoding:

1. **unwrap** — map residues to the centred interval ``[-m/2, m/2)``
   (line 1; exact as long as the true noisy sum did not overflow),
2. **un-scale / un-rotate** — ``g* <- (1/gamma) D_xi H^T z'`` (line 2).

The result is an unbiased estimate of the sum of the participants' clipped
gradients.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

from repro.config import CompressionConfig
from repro.errors import OverflowWarning
from repro.linalg.hadamard import RandomRotation
from repro.linalg.modular import decode_centered


@dataclasses.dataclass(frozen=True)
class GradientDecoder:
    """Algorithm 6: unwrap mod m, un-scale, un-rotate.

    Attributes:
        rotation: The same shared public rotation the encoder used.
        compression: The same wire format (``m``, ``gamma``).
        warn_on_saturation: When True, emit :class:`OverflowWarning` if the
            decoded residues saturate the centred range — a strong hint
            that the aggregate wrapped around (the baselines' small-``m``
            failure mode).
    """

    rotation: RandomRotation
    compression: CompressionConfig
    warn_on_saturation: bool = True

    def decode(self, aggregated: np.ndarray) -> np.ndarray:
        """Recover the estimated (un-padded) gradient sum.

        Args:
            aggregated: Length ``padded_dim`` residue vector in ``[0, m)``
                as released by SecAgg.

        Returns:
            Length ``input_dim`` float64 estimate of the gradient sum.
        """
        centred = decode_centered(aggregated, self.compression.modulus)
        if self.warn_on_saturation and centred.size:
            half = self.compression.modulus // 2
            saturation = np.abs(centred).max() / half
            if saturation >= 0.999:
                warnings.warn(
                    "decoded aggregate touches the modular boundary; the "
                    "true sum likely overflowed and wrapped around",
                    OverflowWarning,
                    stacklevel=2,
                )
        unscaled = centred.astype(np.float64) / self.compression.gamma
        return self.rotation.inverse(unscaled)
