"""The discrete Gaussian mixture mechanism (Appendix B, Algorithms 11-14).

DGM is the paper's demonstration that the mixture construction is not
tied to Skellam noise: the Bernoulli rounding coin is identical, but the
injected noise is a discrete Gaussian ``N_Z(0, sigma^2)``.  The privacy
analysis (Theorem 8 / Corollary 3) pays two penalties Skellam avoids —
the sum of discrete Gaussians is *not* a discrete Gaussian (gap ``tau_n``,
Eq. (7)) and the TensorFlow-Privacy implementation the paper mirrors
rounds the per-participant ``sigma`` up to an integer — both of which
surface at small bitwidths (Figures 4-5).
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import ClipConfig, CompressionConfig
from repro.core.client import GradientEncoder
from repro.errors import ConfigurationError
from repro.linalg.hadamard import RandomRotation
from repro.linalg.modular import decode_centered, encode_mod
from repro.sampling.fast import bernoulli_round, discrete_gaussian_noise
from repro.secagg.protocol import SecureAggregator, ZeroSumMaskProtocol


def round_sigma_up(sigma: float) -> float:
    """Round a per-participant ``sigma`` up to the nearest integer.

    Appendix B.3: "the noise parameter sigma for DGM is integer-valued in
    the current implementation ... if sigma is computed as 0.9 based on
    privacy constraints, then sigma is rounded up to its nearest integer,
    1, for the actual perturbation."  Rounding *up* only adds noise, so
    the privacy guarantee is preserved while utility steps in plateaus —
    the staircase visible in Figures 4-5.
    """
    if not sigma > 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    return float(math.ceil(sigma))


def dgm_perturb(
    values: np.ndarray,
    sigma_squared: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Perturb real values with the discrete Gaussian mixture (Alg. 11-12).

    Args:
        values: Real-valued array of any shape.
        sigma_squared: Per-participant discrete Gaussian parameter.
        rng: Numpy random generator.

    Returns:
        An int64 array of the same shape, unbiased for ``values``.
    """
    values = np.asarray(values, dtype=np.float64)
    rounded = bernoulli_round(values, rng)
    return rounded + discrete_gaussian_noise(sigma_squared, values.shape, rng)


def estimate_sum(
    values: np.ndarray,
    sigma_squared: float,
    modulus: int,
    rng: np.random.Generator,
    aggregator: SecureAggregator | None = None,
) -> np.ndarray:
    """Run dDGM end-to-end (Algorithm 12) and return the decoded sum.

    Args:
        values: ``(n, d)`` real array, one row per participant.
        sigma_squared: Per-participant discrete Gaussian parameter.
        modulus: SecAgg modulus ``m``.
        rng: Numpy random generator.
        aggregator: Optional SecAgg instance; defaults to the zero-sum
            protocol.

    Returns:
        Length-``d`` int64 estimate of the column sums.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ConfigurationError(f"expected an (n, d) array, got ndim={values.ndim}")
    perturbed = dgm_perturb(values, sigma_squared, rng)
    messages = encode_mod(perturbed, modulus)
    aggregator = aggregator or ZeroSumMaskProtocol(modulus, rng)
    residue = aggregator.run(messages)
    return decode_centered(residue, modulus)


def discrete_gaussian_encoder(
    rotation: RandomRotation,
    compression: CompressionConfig,
    clip: ClipConfig,
    sigma: float,
    integer_sigma: bool = True,
) -> GradientEncoder:
    """Build the DGM participant encoder (Algorithm 14).

    Identical to Algorithm 4 except for the injected noise distribution.

    Args:
        rotation: Shared public rotation.
        compression: Wire format (``m``, ``gamma``).
        clip: Mixture clipping thresholds.
        sigma: Per-participant noise standard deviation parameter.
        integer_sigma: Mirror the TF-Privacy behaviour of rounding sigma
            up to an integer before sampling (Appendix B.3).

    Returns:
        A ready-to-use :class:`GradientEncoder`.
    """
    if not sigma > 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    effective_sigma = round_sigma_up(sigma) if integer_sigma else sigma
    sigma_squared = effective_sigma**2
    return GradientEncoder(
        rotation=rotation,
        compression=compression,
        clip=clip,
        noise=lambda shape, rng: discrete_gaussian_noise(
            sigma_squared, shape, rng
        ),
    )
