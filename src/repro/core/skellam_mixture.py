"""The Skellam mixture mechanism (Algorithms 1 and 2 of the paper).

Given a real value ``x`` with integer part ``floor(x)`` and fractional
part ``p = x - floor(x)``, SMM outputs

* ``floor(x) + Sk(lam, lam)`` with probability ``1 - p``, and
* ``floor(x) + 1 + Sk(lam, lam)`` with probability ``p``.

The output is integer-valued, and its expectation equals ``x`` — SMM is an
unbiased integer encoder that needs *no* stochastic/conditional rounding
step (the source of the baselines' sensitivity blow-up).  The variance of
one perturbed coordinate is ``2 lam + p (1 - p)``: the injected Skellam
noise plus the Bernoulli rounding variance (Corollary 2).

:func:`smm_perturb` is the vectorised (fast-sampler) form used by the
experiment pipelines; :func:`smm_perturb_exact` composes the exact
samplers of Appendix A so the noise distribution matches its analytical
form exactly.  :func:`estimate_sum_1d` / :func:`estimate_sum` run the
complete Algorithm 1 / Algorithm 2 including secure aggregation.
"""

from __future__ import annotations

import fractions

import numpy as np

from repro.errors import ConfigurationError
from repro.linalg.modular import decode_centered, encode_mod
from repro.sampling.fast import bernoulli_round, skellam_noise
from repro.sampling.rng import RandIntSource
from repro.sampling.exact_poisson import sample_poisson
from repro.secagg.protocol import SecureAggregator, ZeroSumMaskProtocol


def smm_perturb(
    values: np.ndarray, lam: float, rng: np.random.Generator
) -> np.ndarray:
    """Perturb real values with the Skellam mixture (lines 2-7, Alg. 1-2).

    Args:
        values: Real-valued array of any shape (one participant's data, or
            a batch of participants' vectors).
        lam: The per-participant Skellam parameter; noise variance is
            ``2 * lam`` per coordinate.
        rng: Numpy random generator.

    Returns:
        An int64 array of the same shape, unbiased for ``values``.
    """
    values = np.asarray(values, dtype=np.float64)
    rounded = bernoulli_round(values, rng)
    return rounded + skellam_noise(lam, values.shape, rng)


def smm_perturb_exact(
    values: np.ndarray,
    lam: float | fractions.Fraction,
    source: RandIntSource,
) -> np.ndarray:
    """Exact-sampler variant of :func:`smm_perturb` (Appendix A).

    Every random decision — the Bernoulli rounding coin included — is
    drawn through :class:`RandIntSource`, so the output distribution
    matches the analytical mixture exactly.  Fractional parts are
    represented as exact rationals before the Bernoulli trial.

    Args:
        values: Real-valued array (flattened internally).
        lam: Rational Skellam parameter.
        source: Exact randomness source.

    Returns:
        An int64 array of the same shape as ``values``.
    """
    rational_lam = (
        lam
        if isinstance(lam, fractions.Fraction)
        else fractions.Fraction(lam).limit_denominator(10**9)
    )
    if rational_lam <= 0:
        raise ConfigurationError(f"lambda must be positive, got {lam}")
    values = np.asarray(values, dtype=np.float64)
    flat = values.ravel()
    out = np.empty(flat.shape, dtype=np.int64)
    for index, value in enumerate(flat):
        floor = int(np.floor(value))
        fraction_part = fractions.Fraction(float(value) - floor).limit_denominator(
            10**9
        )
        coin = source.bernoulli(
            fraction_part.numerator, fraction_part.denominator
        )
        noise = sample_poisson(
            rational_lam.numerator, rational_lam.denominator, source
        ) - sample_poisson(
            rational_lam.numerator, rational_lam.denominator, source
        )
        out[index] = floor + coin + noise
    return out.reshape(values.shape)


def mixture_variance(values: np.ndarray, lam: float) -> float:
    """Total variance of the SMM estimate of ``sum(values)`` (Corollary 2).

    ``n`` participants contribute ``2 n lam`` of Skellam variance per
    coordinate plus ``sum_i p_i (1 - p_i)`` of Bernoulli rounding variance,
    where ``p_i`` is the fractional part of participant ``i``'s value.

    Args:
        values: ``(n,)`` or ``(n, d)`` array of participant values.
        lam: Per-participant Skellam parameter.

    Returns:
        The summed variance over all coordinates of the estimated sum.
    """
    values = np.asarray(values, dtype=np.float64)
    fractional = values - np.floor(values)
    bernoulli_var = float(np.sum(fractional * (1.0 - fractional)))
    num_participants = values.shape[0]
    num_coords = 1 if values.ndim == 1 else values.shape[1]
    return 2.0 * lam * num_participants * num_coords + bernoulli_var


def estimate_sum_1d(
    values: np.ndarray,
    lam: float,
    modulus: int,
    rng: np.random.Generator,
    aggregator: SecureAggregator | None = None,
) -> int:
    """Run 1SMM end-to-end (Algorithm 1) and return the decoded sum.

    Args:
        values: ``(n,)`` real array, one scalar per participant.
        lam: Per-participant Skellam parameter.
        modulus: SecAgg modulus ``m``.
        rng: Numpy random generator (noise + SecAgg masks).
        aggregator: Optional SecAgg instance; defaults to the fast
            zero-sum protocol.

    Returns:
        The server's integer estimate of ``sum(values)``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ConfigurationError(f"expected a 1-d array, got ndim={values.ndim}")
    perturbed = smm_perturb(values, lam, rng)
    messages = encode_mod(perturbed[:, np.newaxis], modulus)
    aggregator = aggregator or ZeroSumMaskProtocol(modulus, rng)
    residue = aggregator.run(messages)
    return int(decode_centered(residue, modulus)[0])


def estimate_sum(
    values: np.ndarray,
    lam: float,
    modulus: int,
    rng: np.random.Generator,
    aggregator: SecureAggregator | None = None,
) -> np.ndarray:
    """Run dSMM end-to-end (Algorithm 2) and return the decoded vector sum.

    Args:
        values: ``(n, d)`` real array, one row per participant.
        lam: Per-participant Skellam parameter.
        modulus: SecAgg modulus ``m``.
        rng: Numpy random generator (noise + SecAgg masks).
        aggregator: Optional SecAgg instance; defaults to the fast
            zero-sum protocol.

    Returns:
        Length-``d`` int64 estimate of the column sums.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ConfigurationError(f"expected an (n, d) array, got ndim={values.ndim}")
    perturbed = smm_perturb(values, lam, rng)
    messages = encode_mod(perturbed, modulus)
    aggregator = aggregator or ZeroSumMaskProtocol(modulus, rng)
    residue = aggregator.run(messages)
    return decode_centered(residue, modulus)
