"""Noise calibration: solve for the noise parameter meeting a DP budget.

Every mechanism in the paper exposes a monotone trade-off: more noise
(larger ``lambda``, ``sigma^2`` or binomial ``N``) means a smaller
converted epsilon.  The experiments fix a target ``(epsilon, delta)`` and
solve for the noise parameter; this module provides that inversion:

* :func:`epsilon_for_curve` — the forward direction: per-round RDP curve
  -> total epsilon under ``T``-fold composition (Lemma 1), optional
  Poisson subsampling (Lemma 2) and conversion at the optimal order
  (Lemma 3), exactly the paper's accounting procedure.
* :func:`calibrate_noise` — the inverse: bracket-and-bisect the smallest
  noise parameter whose epsilon is within budget.

The calibrator works for any mechanism through a *curve factory*: a
callable mapping the candidate noise parameter to that mechanism's
per-round RDP curve.  Parameters at which a curve is infeasible at every
order (the feasibility constraints Eq. (3) / Eq. (8), or cpSGD's variance
condition) are treated as ``epsilon = inf``.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable

from repro.config import PrivacyBudget
from repro.accounting.rdp import RdpCurve, best_epsilon, subsampled_rdp
from repro.errors import CalibrationError, PrivacyAccountingError

#: Maps a candidate noise parameter to a mechanism's per-round RDP curve.
CurveFactory = Callable[[float], RdpCurve]


@dataclasses.dataclass(frozen=True)
class AccountingSpec:
    """How many releases are composed and how participants are sampled.

    Attributes:
        budget: The target ``(epsilon, delta)``.
        rounds: Number of composed releases ``T`` (1 for one-shot sum
            estimation).
        sampling_rate: Poisson sampling probability ``q`` of each
            participant per round (1 disables amplification).
    """

    budget: PrivacyBudget
    rounds: int = 1
    sampling_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise CalibrationError(f"rounds must be >= 1, got {self.rounds}")
        if not 0 < self.sampling_rate <= 1:
            raise CalibrationError(
                f"sampling_rate must be in (0, 1], got {self.sampling_rate}"
            )


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a successful calibration.

    Attributes:
        noise_parameter: The calibrated mechanism parameter (total
            ``lambda``, ``sigma^2``, binomial ``N``, ... — mechanism
            specific).
        epsilon: The achieved epsilon (<= the budget's target).
        order: The optimal Renyi order attaining that epsilon.
    """

    noise_parameter: float
    epsilon: float
    order: int


def _memoised(curve: RdpCurve) -> RdpCurve:
    """Cache curve evaluations (subsampling re-queries the same orders)."""
    cache: dict[int, float] = {}
    errors: dict[int, PrivacyAccountingError] = {}

    def wrapped(order: int) -> float:
        if order in errors:
            raise errors[order]
        if order not in cache:
            try:
                cache[order] = curve(order)
            except PrivacyAccountingError as exc:
                errors[order] = exc
                raise
        return cache[order]

    return wrapped


def epsilon_for_curve(curve: RdpCurve, spec: AccountingSpec) -> tuple[float, int]:
    """Total converted epsilon of ``T`` (subsampled) releases.

    Args:
        curve: Per-release RDP curve of the mechanism.
        spec: Composition count, sampling rate and target delta.

    Returns:
        ``(epsilon, order)`` at the optimal feasible Renyi order.

    Raises:
        PrivacyAccountingError: If no candidate order is feasible.
    """
    base = _memoised(curve)
    if spec.sampling_rate < 1:

        def per_round(alpha: int) -> float:
            return subsampled_rdp(alpha, spec.sampling_rate, base)

    else:
        per_round = base

    def total(alpha: int) -> float:
        return spec.rounds * per_round(alpha)

    return best_epsilon(spec.budget.orders, total, spec.budget.delta)


def calibrate_noise(
    curve_factory: CurveFactory,
    spec: AccountingSpec,
    initial: float = 1.0,
    relative_tolerance: float = 1e-4,
    max_doublings: int = 200,
) -> CalibrationResult:
    """Find the smallest noise parameter meeting the budget.

    Assumes ``epsilon`` is non-increasing in the noise parameter (true for
    every mechanism here).  The search brackets the target by doubling /
    halving from ``initial`` and then bisects to ``relative_tolerance``.

    Args:
        curve_factory: Candidate parameter -> per-release RDP curve.
        spec: Accounting specification (budget, rounds, sampling rate).
        initial: Starting guess for the parameter.
        relative_tolerance: Bisection stops when the bracket is this tight.
        max_doublings: Safety bound on the bracketing phase.

    Returns:
        The calibrated parameter with its achieved epsilon and order.

    Raises:
        CalibrationError: If no parameter within ``initial * 2**200``
            meets the budget.
    """
    if initial <= 0:
        raise CalibrationError(f"initial must be positive, got {initial}")
    target = spec.budget.epsilon

    def achieved(parameter: float) -> float:
        try:
            epsilon, _ = epsilon_for_curve(curve_factory(parameter), spec)
        except PrivacyAccountingError:
            return math.inf
        return epsilon

    # Bracket: find hi with achieved(hi) <= target.
    hi = initial
    doublings = 0
    while achieved(hi) > target:
        hi *= 2.0
        doublings += 1
        if doublings > max_doublings:
            raise CalibrationError(
                f"no noise parameter up to {hi:g} meets epsilon={target}"
            )
    # Tighten lo: find lo with achieved(lo) > target (or accept tiny noise).
    lo = hi / 2.0
    halvings = 0
    while achieved(lo) <= target:
        hi = lo
        lo /= 2.0
        halvings += 1
        if halvings > max_doublings:
            lo = 0.0
            break
    while hi - lo > relative_tolerance * hi:
        mid = (lo + hi) / 2.0
        if achieved(mid) <= target:
            hi = mid
        else:
            lo = mid
    epsilon, order = epsilon_for_curve(curve_factory(hi), spec)
    return CalibrationResult(noise_parameter=hi, epsilon=epsilon, order=order)
