"""Privacy attacks used to motivate and audit the paper's design choices.

* :mod:`repro.attacks.floating_point` — Mironov's least-significant-bits
  attack on additive DP mechanisms implemented with floating-point
  arithmetic (the paper's Section 1 "Remark on integer-valued noises"),
  plus the demonstration that integer-valued noise is immune.
"""

from repro.attacks.floating_point import (
    AttackReport,
    attack_success_rate,
    integer_mechanism_support,
    mironov_distinguisher,
    porous_support,
    quantize,
    round_to_precision,
)

__all__ = [
    "AttackReport",
    "attack_success_rate",
    "integer_mechanism_support",
    "mironov_distinguisher",
    "porous_support",
    "quantize",
    "round_to_precision",
]
