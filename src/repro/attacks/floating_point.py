"""Mironov's floating-point attack, and why integer noise defeats it.

The paper's "Remark on integer-valued noises" (Section 1) motivates the
whole line of work: Mironov (CCS 2012) showed that *additive DP
mechanisms implemented with floating-point arithmetic* leak their input,
because the set of doubles reachable as ``query + noise`` is a sparse,
query-dependent subset of the reals.  An adversary who observes an
output reachable under answer ``a`` but not under answer ``a'`` learns
the answer *exactly*, regardless of the claimed epsilon.

This module reproduces the phenomenon at a reduced precision where the
reachable sets can be enumerated exhaustively:

* noise values are produced by the textbook inverse-CDF Laplace sampler
  ``noise = -scale * sign * ln(u)`` with ``u`` drawn from a finite
  uniform grid (standing in for the float mantissa grid), every
  intermediate rounded to a fixed absolute grid (standing in for
  rounding of float arithmetic);
* :func:`porous_support` enumerates the finite set of reachable outputs
  for a given true answer — the "porous" support of Mironov's paper;
* :func:`mironov_distinguisher` decides which answer produced an
  observed output by support membership, and
  :func:`attack_success_rate` measures how often a single observation
  identifies the answer outright.

For the defence, :func:`integer_mechanism_support` shows the contrast:
an integer-valued mechanism (Skellam, discrete Gaussian) shifted by an
integer query has the *same* support (all integers) under both answers,
so support membership carries zero information and privacy degrades
only through the bounded probability ratio — which is exactly the DP
guarantee.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import ConfigurationError

#: Mantissa bits of the reduced-precision arithmetic (doubles have 53).
DEFAULT_MANTISSA_BITS = 12

#: Number of representable uniform variates (stands in for the mantissa).
DEFAULT_UNIFORM_POINTS = 4096


def quantize(value: float, grid: float) -> float:
    """Round ``value`` to the nearest multiple of an absolute ``grid``.

    A fixed-point helper used in tests; the attack itself uses
    :func:`round_to_precision`, which models floating-point rounding
    (the grid step scales with the magnitude).
    """
    if grid <= 0:
        raise ConfigurationError(f"grid must be positive, got {grid}")
    return round(value / grid) * grid


def round_to_precision(
    value: float, bits: int = DEFAULT_MANTISSA_BITS
) -> float:
    """Round ``value`` to ``bits`` mantissa bits (reduced-precision float).

    This is the operation real floating-point hardware applies after
    every arithmetic step; running the mechanism at 12 bits instead of
    the double's 52 makes the reachable-output sets small enough to
    enumerate while preserving the structure Mironov exploits — the
    rounding grid *changes with the magnitude of the result*, so
    ``answer + noise`` lands on an answer-dependent set of points.
    """
    if bits < 1:
        raise ConfigurationError(f"bits must be >= 1, got {bits}")
    if value == 0.0 or not math.isfinite(value):
        return value
    mantissa, exponent = math.frexp(value)  # mantissa in [0.5, 1)
    scale = float(1 << bits)
    return math.ldexp(round(mantissa * scale) / scale, exponent)


def _laplace_noise_values(
    scale: float,
    uniform_points: int = DEFAULT_UNIFORM_POINTS,
    bits: int = DEFAULT_MANTISSA_BITS,
) -> list[float]:
    """Every noise value the reduced-precision Laplace sampler can emit.

    The sampler computes ``-scale * ln(u)`` for ``u`` on the uniform
    grid ``{1/N, 2/N, ..., (N-1)/N}``, rounds to the working precision,
    and mirrors the sign — the inverse-CDF method as implemented in
    floating-point libraries.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    if uniform_points < 2:
        raise ConfigurationError(
            f"need at least 2 uniform points, got {uniform_points}"
        )
    magnitudes = {
        round_to_precision(-scale * math.log(k / uniform_points), bits)
        for k in range(1, uniform_points)
    }
    values = set()
    for magnitude in magnitudes:
        values.add(magnitude)
        values.add(-magnitude)
    return sorted(values)


def porous_support(
    answer: float,
    scale: float,
    uniform_points: int = DEFAULT_UNIFORM_POINTS,
    bits: int = DEFAULT_MANTISSA_BITS,
) -> frozenset[float]:
    """The finite set of outputs reachable as ``answer + Laplace noise``
    in reduced-precision arithmetic.

    Args:
        answer: The true query answer being protected.
        scale: Laplace scale parameter.
        uniform_points: Size of the uniform-variate grid.
        bits: Mantissa bits of the working precision.

    Returns:
        The reachable outputs — a sparse, answer-dependent set.
    """
    return frozenset(
        round_to_precision(answer + noise, bits)
        for noise in _laplace_noise_values(scale, uniform_points, bits)
    )


def mironov_distinguisher(
    observed: float,
    support_zero: frozenset[float],
    support_one: frozenset[float],
) -> int | None:
    """Decide which answer produced ``observed`` by support membership.

    Returns:
        ``0`` or ``1`` when the output is reachable under exactly one
        answer (the attack succeeds with certainty), ``None`` when it is
        reachable under both (no certain conclusion).
    """
    in_zero = observed in support_zero
    in_one = observed in support_one
    if in_zero and not in_one:
        return 0
    if in_one and not in_zero:
        return 1
    return None


@dataclasses.dataclass(frozen=True)
class AttackReport:
    """Outcome of an attack simulation.

    Attributes:
        trials: Number of simulated mechanism invocations.
        identified: Invocations whose output pinpointed the answer.
        errors: Invocations where the distinguisher returned the *wrong*
            answer (must be 0 — support membership never lies).
    """

    trials: int
    identified: int
    errors: int

    @property
    def success_rate(self) -> float:
        """Fraction of single observations that broke privacy outright."""
        return self.identified / self.trials if self.trials else 0.0


def attack_success_rate(
    scale: float,
    rng: np.random.Generator,
    trials: int = 1000,
    answers: tuple[float, float] = (0.0, 1.0),
    uniform_points: int = DEFAULT_UNIFORM_POINTS,
    bits: int = DEFAULT_MANTISSA_BITS,
) -> AttackReport:
    """Simulate the attack against the reduced-precision Laplace mechanism.

    Each trial flips a fair coin for the true answer, runs the
    floating-point mechanism once, and asks the distinguisher which
    answer produced the output.

    Args:
        scale: Laplace scale (``sensitivity / epsilon``).
        rng: Simulation randomness.
        trials: Number of mechanism invocations.
        answers: The two candidate answers (differ by the sensitivity).
        uniform_points: Uniform grid size of the sampler.
        bits: Mantissa bits of the working precision.

    Returns:
        The attack report; the success rate is typically close to 1 —
        a *single* 'differentially private' response identifies the
        answer, exactly Mironov's finding.
    """
    supports = (
        porous_support(answers[0], scale, uniform_points, bits),
        porous_support(answers[1], scale, uniform_points, bits),
    )
    identified = 0
    errors = 0
    for _ in range(trials):
        secret = int(rng.integers(0, 2))
        k = int(rng.integers(1, uniform_points))
        magnitude = round_to_precision(
            -scale * math.log(k / uniform_points), bits
        )
        sign = 1.0 if rng.integers(0, 2) else -1.0
        observed = round_to_precision(answers[secret] + sign * magnitude, bits)
        guess = mironov_distinguisher(observed, *supports)
        if guess is not None:
            if guess == secret:
                identified += 1
            else:
                errors += 1
    return AttackReport(trials=trials, identified=identified, errors=errors)


def integer_mechanism_support(
    answer: int, noise_values: np.ndarray
) -> frozenset[int]:
    """The reachable outputs of an integer mechanism at a given answer.

    For integer noise with support ``S`` the mechanism's support is the
    *translate* ``answer + S``; for the symmetric Skellam (support all
    of ``Z``) translates coincide, so :func:`mironov_distinguisher`
    always returns ``None`` — the attack is structurally impossible.

    Args:
        answer: Integer query answer.
        noise_values: Integer noise support (e.g. a truncated Skellam
            range ``-K..K`` containing all but negligible mass).

    Returns:
        The translated support.
    """
    values = np.asarray(noise_values)
    if not np.issubdtype(values.dtype, np.integer):
        raise ConfigurationError(
            f"integer mechanism needs integer noise, got {values.dtype}"
        )
    return frozenset(int(answer + v) for v in values)
