"""Quickstart: private distributed sum estimation with SMM.

Thirty participants each hold a private unit-norm vector.  They want the
server to learn (approximately) the vector sum — and nothing else — under
(epsilon = 3, delta = 1e-5) differential privacy, communicating one
16-bit integer per dimension through secure aggregation.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import (
    AccountingSpec,
    CompressionConfig,
    InputSpec,
    PrivacyBudget,
    SkellamMixtureMechanism,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # Each of the 30 participants holds one private 512-dimensional
    # vector of L2 norm 1 (the public bound the mechanism clips to).
    num_participants, dimension = 30, 512
    private_vectors = rng.normal(size=(num_participants, dimension))
    private_vectors /= np.linalg.norm(private_vectors, axis=1, keepdims=True)

    # Wire format: 16-bit SecAgg messages, quantisation scale gamma = 64.
    mechanism = SkellamMixtureMechanism(
        CompressionConfig(modulus=2**16, gamma=64.0)
    )

    # Calibrate the per-participant Skellam noise so the *aggregate*
    # release satisfies (3, 1e-5)-DP (Theorem 5 + Lemma 3 accounting).
    mechanism.calibrate(
        InputSpec(num_participants=num_participants, dimension=dimension),
        AccountingSpec(budget=PrivacyBudget(epsilon=3.0, delta=1e-5)),
    )
    summary = mechanism.describe()
    print("calibration:")
    for key, value in summary.items():
        print(f"  {key}: {value}")

    # Run the full pipeline: rotate -> scale -> clip -> Skellam-mixture
    # perturb -> mod m -> SecAgg -> decode.
    estimate = mechanism.estimate_sum(private_vectors, rng)

    true_sum = private_vectors.sum(axis=0)
    mse = float(np.mean((estimate - true_sum) ** 2))
    print(f"\nper-dimension mse of the private sum: {mse:.4f}")
    print(f"true-sum norm: {np.linalg.norm(true_sum):.2f}, "
          f"estimate norm: {np.linalg.norm(estimate):.2f}")


if __name__ == "__main__":
    main()
