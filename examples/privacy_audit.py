"""Empirically audit a calibrated mechanism's privacy claim.

Plays the (epsilon, delta)-DP distinguishing game against SMM: runs the
mechanism thousands of times on two neighbouring datasets and measures
the largest observed privacy loss over a family of threshold events.
An honest mechanism stays below its analytic epsilon; a sabotaged one
(noise removed) is flagged immediately.

Run:
    python examples/privacy_audit.py [--trials 2000]
"""

import argparse

import numpy as np

from repro import (
    AccountingSpec,
    CompressionConfig,
    GaussianMechanism,
    InputSpec,
    PrivacyBudget,
    SkellamMixtureMechanism,
)
from repro.audit import audit_sum_mechanism


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=2000)
    parser.add_argument("--epsilon", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spec = InputSpec(num_participants=8, dimension=16)
    accounting = AccountingSpec(budget=PrivacyBudget(epsilon=args.epsilon))
    rng = np.random.default_rng(args.seed)

    print(f"distinguishing game with {args.trials} runs per dataset\n")

    mechanism = SkellamMixtureMechanism(
        CompressionConfig(modulus=2**16, gamma=128.0)
    )
    mechanism.calibrate(spec, accounting)
    result = audit_sum_mechanism(mechanism, rng, trials=args.trials)
    print(f"smm (honest):        empirical eps = {result.empirical_epsilon:.3f}"
          f"  <=  claimed eps = {result.analytic_epsilon:.1f}"
          f"  -> {'VIOLATION' if result.violated else 'ok'}")

    honest = GaussianMechanism()
    honest.calibrate(spec, accounting)
    result = audit_sum_mechanism(honest, rng, trials=args.trials)
    print(f"gaussian (honest):   empirical eps = {result.empirical_epsilon:.3f}"
          f"  <=  claimed eps = {result.analytic_epsilon:.1f}"
          f"  -> {'VIOLATION' if result.violated else 'ok'}")

    sabotaged = GaussianMechanism()
    sabotaged.calibrate(spec, accounting)
    sabotaged.sigma = 1e-6  # Remove the noise but keep the claim.
    result = audit_sum_mechanism(sabotaged, rng, trials=args.trials)
    print(f"gaussian (no noise): empirical eps = {result.empirical_epsilon:.3f}"
          f"  vs  claimed eps = {result.analytic_epsilon:.1f}"
          f"  -> {'VIOLATION detected' if result.violated else 'MISSED'}")


if __name__ == "__main__":
    main()
