"""RDP (Theorem 5) versus tight PLD accounting for the SMM release.

The paper accounts privacy with Rényi DP — Theorem 5's closed form,
composed by Lemma 1/2 and converted by Lemma 3.  Its Related Work cites
Koskela et al. [34] as the tight FFT alternative.  This example
quantifies the difference on SMM's own worst-case distribution pair:

* for a *single* release the RDP-converted epsilon is ~10x the tight
  value — at these small aggregate noise levels Eq. (3) restricts the
  feasible Rényi orders to alpha <= 3, so Lemma 3's log(1/delta) /
  (alpha - 1) conversion term dominates; and
* under *subsampled composition* the gap persists (Lemma 2 adds its own
  slack on top) — evidence that the mechanism is substantially more
  private than its RDP certificate, and why the paper lists tightening
  the analysis constants as future work.

Run:
    python examples/accounting_comparison.py
"""

import math

from repro.accounting.divergences import smm_rdp
from repro.accounting.pld import smm_pair_pmfs, tight_epsilon
from repro.accounting.rdp import RdpAccountant, best_epsilon

DELTA = 1e-5
VALUE = 1.5  # the differing record's scaled value x_{n+1}


def mixture_sensitivity(value: float) -> float:
    frac = value - math.floor(value)
    return value**2 + frac - frac**2


def single_release(total_lambda: float) -> tuple[float, float]:
    """(RDP epsilon, tight PLD epsilon) for one SMM release."""
    c = mixture_sensitivity(VALUE)
    delta_inf = max(1, math.ceil(VALUE))
    rdp_eps, _ = best_epsilon(
        range(2, 101),
        lambda a: smm_rdp(a, c, total_lambda, delta_inf),
        DELTA,
    )
    p, q = smm_pair_pmfs(VALUE, total_lambda)
    return rdp_eps, tight_epsilon(p, q, DELTA)


def composed_run(
    total_lambda: float, rounds: int, sampling_rate: float
) -> tuple[float, float]:
    """(RDP epsilon, tight PLD epsilon) for a subsampled training run."""
    c = mixture_sensitivity(VALUE)
    delta_inf = max(1, math.ceil(VALUE))
    accountant = RdpAccountant()
    accountant.step_subsampled(
        lambda a: smm_rdp(a, c, total_lambda, delta_inf),
        sampling_rate,
        count=rounds,
    )
    p, q = smm_pair_pmfs(VALUE, total_lambda)
    pld_eps = tight_epsilon(
        p, q, DELTA, compositions=rounds, sampling_rate=sampling_rate
    )
    return accountant.epsilon(DELTA), pld_eps


def main() -> None:
    print(f"worst-case record value x = {VALUE}, "
          f"c = {mixture_sensitivity(VALUE):.3f}, delta = {DELTA}\n")

    print("single release (no composition):")
    print(f"{'n*lambda':>10s} {'RDP eps':>9s} {'PLD eps':>9s} {'ratio':>6s}")
    for total_lambda in (100.0, 400.0, 1600.0):
        rdp_eps, pld_eps = single_release(total_lambda)
        print(f"{total_lambda:10.0f} {rdp_eps:9.3f} {pld_eps:9.3f} "
              f"{rdp_eps / pld_eps:6.2f}")

    print("\ncomposed run (T = 100 rounds, q = 0.05):")
    print(f"{'n*lambda':>10s} {'RDP eps':>9s} {'PLD eps':>9s} {'ratio':>6s}")
    for total_lambda in (100.0, 400.0):
        rdp_eps, pld_eps = composed_run(total_lambda, 100, 0.05)
        print(f"{total_lambda:10.0f} {rdp_eps:9.3f} {pld_eps:9.3f} "
              f"{rdp_eps / pld_eps:6.2f}")

    print("\nreading: at small n*lambda, Eq. (3) caps the feasible Renyi")
    print("orders, so the Lemma 3 conversion term log(1/delta)/(alpha-1)")
    print("floors the RDP epsilon; the tight PLD shows the release is far")
    print("more private than the closed-form certificate claims.")


if __name__ == "__main__":
    main()
