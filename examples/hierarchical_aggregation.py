"""Hierarchy equivalence: one cohort, four aggregation-tree shapes.

The aggregation tree changes *who can see what*, never the sum.  This
example runs the **same cohort with the same seed** through four
shapes:

* flat            — one Bonawitz round over the whole cohort;
* 2-level clear   — 8 leaf shards, sums composed by modular addition
                    (the composing server sees every shard sum);
* 2-level secagg  — 8 leaf shards, composed by an *outer* Bonawitz
                    round over virtual clients (shard sums stay
                    masked);
* 3-level secagg  — a 4x4 region→global tree, every interior level
                    SecAgg-composed.

and asserts the SHA-256 digest of the aggregate is identical across
all four: pairwise masks cancel over the survivor set at every level,
so hierarchical composition — clear or cryptographic — is bit-exact.

With ``--metrics-out`` the run also writes a Prometheus snapshot of
the secagg-composed runs, where the per-level labels on the phase
histograms (``level="0"``, ``level="1"``) make each composition
round's cost visible — the artifact CI uploads.

Run:
    python examples/hierarchical_aggregation.py [--clients 512]
"""

import argparse
import hashlib

import numpy as np

from repro.simulation import (
    AsyncSecAggRound,
    HierarchicalSecAggRound,
    SimulatedClock,
    shamir_threshold,
)
from repro.telemetry import MetricsRegistry

MODULUS = 2**32
DIMENSION = 64
SEED = 20220811


def digest(vector: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(vector, dtype=np.int64).tobytes()
    ).hexdigest()


def flat_round(vectors: dict) -> tuple[str, int]:
    clock = SimulatedClock()
    round_ = AsyncSecAggRound(
        vectors=vectors,
        modulus=MODULUS,
        threshold=shamir_threshold(0.8, len(vectors)),
        clock=clock,
        rng=np.random.default_rng(SEED),
    )
    outcome = clock.run(round_.run())
    return digest(outcome.modular_sum), len(outcome.included)


def tree_round(
    vectors: dict,
    topology: str,
    composer: str,
    metrics: MetricsRegistry | None,
) -> tuple[str, int]:
    clock = SimulatedClock()
    round_ = HierarchicalSecAggRound(
        vectors=vectors,
        modulus=MODULUS,
        clock=clock,
        rng=np.random.default_rng(SEED),
        topology=topology,
        threshold_fraction=0.8,
        composer=composer,
        metrics=metrics,
    )
    outcome = round_.execute()
    assert outcome.composer == composer
    return digest(outcome.modular_sum), len(outcome.included)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=64,
                        help="cohort size (CI runs 512)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the secagg-composed runs' metrics "
                             "(with per-level labels) as Prometheus text")
    args = parser.parse_args()

    rng = np.random.default_rng(SEED)
    vectors = {
        u: rng.integers(0, MODULUS, size=DIMENSION)
        for u in range(1, args.clients + 1)
    }
    metrics = MetricsRegistry()

    print(f"cohort: {args.clients} clients, dimension {DIMENSION}, "
          f"modulus 2^32")
    shapes = {
        "flat": lambda: flat_round(vectors),
        "2-level clear (8 shards)": lambda: tree_round(
            vectors, "8", "clear", None
        ),
        "2-level secagg (8 shards)": lambda: tree_round(
            vectors, "8", "secagg", metrics
        ),
        "3-level secagg (4x4 tree)": lambda: tree_round(
            vectors, "4x4", "secagg", metrics
        ),
    }
    digests = {}
    for name, run in shapes.items():
        digests[name], included = run()
        print(f"  {name:>26s}: included={included:4d} "
              f"digest={digests[name][:16]}…")

    identical = len(set(digests.values())) == 1
    print(f"digest-identical across composers: {identical}")
    assert identical, digests

    levels = sorted(
        {
            value
            for series in metrics.snapshot().series
            for key, value in series.labels
            if key == "level"
        }
    )
    print(f"composition rounds metered at levels: {levels}")
    assert levels, "secagg composition should meter per-level series"

    if args.metrics_out:
        from repro.telemetry import MetricsReport

        report = MetricsReport(snapshot=metrics.snapshot())
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_prometheus())
        print(f"per-level metrics written to {args.metrics_out}")


if __name__ == "__main__":
    main()
