"""Asynchronous federated orchestration over an unreliable population.

The paper's experiments assume every sampled participant is online and
instantaneous.  This example runs the same Skellam-mixture training
loop the way a production deployment would experience it: an asyncio
engine on a deterministic simulated clock, a 24-client population where
clients crash mid-protocol (20% per round, at a uniformly random phase
of the Bonawitz state machine) and upload over heavy-tailed log-normal
latencies, a server that closes each phase at a deadline and moves on,
and Shamir reconstruction cleaning up whatever masks the dropouts left
behind.

Three properties are demonstrated:

* **dropout tolerance** — every round completes and the decoded
  aggregate exactly matches the surviving cohort's direct modular sum;
* **online accounting** — a per-round RDP ledger reports the cumulative
  (epsilon, delta) spent so far, converging to the calibrated budget;
* **bit-reproducibility** — re-running with the same seed yields the
  same final model parameters, hash-for-hash.

Run:
    python examples/async_simulation.py
"""

import warnings

from repro.simulation import (
    BernoulliDropout,
    SimulationConfig,
    SimulationEngine,
    StragglerLatency,
)

CONFIG = SimulationConfig(
    population_size=24,
    expected_cohort=12,
    rounds=3,
    modulus=2**16,
    gamma=16.0,
    epsilon=5.0,
    hidden=4,
    test_records=64,
    phase_timeout=30.0,
    seed=11,
    verify_aggregate=True,
)


def build_engine() -> SimulationEngine:
    # 20% of each round's cohort crashes mid-protocol; everyone uploads
    # over log-normal latencies whose tail collides with the 30s phase
    # deadline, so stragglers are dropped by timeout too.
    availability = BernoulliDropout(
        0.2, base=StragglerLatency(median=2.0, sigma=1.5)
    )
    return SimulationEngine(CONFIG, availability=availability)


def main() -> None:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # Overflow is part of the data.
        result = build_engine().run()

        print(f"population: {CONFIG.population_size} clients, "
              f"expected cohort {CONFIG.expected_cohort}, "
              f"{CONFIG.rounds} rounds")
        for record in result.records:
            print(f"  round {record.index}: cohort={len(record.cohort):2d} "
                  f"included={len(record.included):2d} "
                  f"dropped={len(record.dropped):2d} "
                  f"eps so far={record.epsilon:5.2f} "
                  f"aggregate exact={record.aggregate_matches}")
        print(f"simulated wall time: {result.sim_duration:.1f}s")
        print(f"cumulative privacy: eps={result.epsilon:.3f}, "
              f"delta={result.delta:g}")
        print(f"final test accuracy: {100 * result.final_accuracy:.1f}%")

        assert all(r.aggregate_matches for r in result.records if not r.aborted)

        # Same seed, same everything — the determinism contract.
        replay = build_engine().run()
        identical = replay.parameters_digest == result.parameters_digest
        print(f"bit-reproducible: {identical}")
        assert identical, "same seed must give identical parameters"


if __name__ == "__main__":
    main()
