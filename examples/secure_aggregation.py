"""The full Bonawitz SecAgg protocol surviving client dropouts.

The paper treats secure aggregation as a black box; this example opens
the box.  Ten clients run the four-round Bonawitz et al. protocol —
Diffie-Hellman key advertisement, Shamir key sharing, double-masked
input collection, and unmasking — while some of them crash
mid-protocol.  Which clients crash, and at which phase, is decided by
the *same* availability model the asynchronous simulation engine uses
(:class:`repro.simulation.BernoulliDropout`), so this walkthrough and
the engine can never drift apart: ``--dropout-rate 0.2`` here is the
exact per-client, per-round crash process a
``python -m repro.cli simulate --dropout-rate 0.2`` run experiences.

Clients that crash *before* uploading their masked input are excluded
from the sum (their lingering pairwise masks are reconstructed and
removed); clients that crash *after* uploading stay included (their
self-mask seed is reconstructed instead).  Either way the recovered
modular sum is exactly the survivors' true sum, and no individual
input is revealed.

Run:
    python examples/secure_aggregation.py [--dropout-rate 0.2] [--seed 42]
"""

import argparse

import numpy as np

from repro.errors import AggregationError
from repro.secagg import run_bonawitz
from repro.secagg.bonawitz import ROUND_MASKED_INPUT
from repro.simulation import BernoulliDropout, Population

NUM_CLIENTS = 10
DIMENSION = 128
MODULUS = 2**16
THRESHOLD = 6


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dropout-rate", type=float, default=0.2,
        help="per-client crash probability (same Bernoulli availability "
             "model as the simulation engine)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)

    # Each client holds a private integer vector over Z_m (in FL these
    # would be SMM-perturbed gradients; here random data keeps the
    # example self-contained).
    inputs = rng.integers(
        0, MODULUS, size=(NUM_CLIENTS, DIMENSION), dtype=np.int64
    )

    # Ask the engine's availability model who crashes, and when.  The
    # model yields one plan per (client, round); we run a single round.
    population = Population(
        NUM_CLIENTS,
        availability=BernoulliDropout(args.dropout_rate),
        seed=args.seed,
    )
    plans = population.plans(round_index=0, cohort=population.client_indices)
    dropouts = {
        client: plan.drop_phase
        for client, plan in plans.items()
        if plan.drop_phase is not None
    }

    try:
        outcome = run_bonawitz(
            inputs,
            modulus=MODULUS,
            threshold=THRESHOLD,
            rng=rng,
            dropouts=dropouts,
        )
    except AggregationError as error:
        # Below the Shamir threshold the protocol *must* abort rather
        # than mis-aggregate — the other core guarantee.
        raise SystemExit(
            f"aggregation aborted (dropouts exceeded what threshold "
            f"{THRESHOLD} tolerates): {error}"
        )

    print(f"clients: {NUM_CLIENTS}, Shamir threshold: {THRESHOLD}, "
          f"dropout rate: {args.dropout_rate}")
    for client in sorted(dropouts):
        timing = (
            "before contributing" if dropouts[client] <= ROUND_MASKED_INPUT
            else "after contributing"
        )
        print(f"  client {client} crashed at phase {dropouts[client]} "
              f"({timing})")
    print(f"inputs included in the sum: {sorted(outcome.included)}")

    expected = np.mod(
        inputs[[u - 1 for u in sorted(outcome.included)]].sum(axis=0),
        MODULUS,
    )
    correct = bool(np.array_equal(outcome.modular_sum, expected))
    print(f"recovered modular sum matches the survivors' true sum: {correct}")
    print(f"first 8 coordinates: {outcome.modular_sum[:8].tolist()}")

    # The run rode the sans-I/O wire core, so the round comes with a
    # byte-accurate traffic ledger: messages and serialized bytes per
    # protocol phase (the share-keys phase is the quadratic one).
    if outcome.wire is not None:
        print("wire traffic per phase (client->server / server->client):")
        for phase, totals in outcome.wire.phase_totals().items():
            print(f"  {phase:>13}: {totals['up_messages']:4d} msgs "
                  f"{totals['up_bytes']:7d} B  /  "
                  f"{totals['down_messages']:4d} msgs "
                  f"{totals['down_bytes']:7d} B")
        print(f"total: {outcome.wire.total_messages} messages, "
              f"{outcome.wire.total_bytes / 1024:.1f} KiB")

    assert correct, "protocol failed to recover the correct sum"
    for client, phase in dropouts.items():
        if phase <= ROUND_MASKED_INPUT:
            assert client not in outcome.included, (
                "pre-input dropout should be excluded"
            )
        else:
            assert client in outcome.included, (
                "post-input dropout should stay included"
            )


if __name__ == "__main__":
    main()
