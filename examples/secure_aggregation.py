"""The full Bonawitz SecAgg protocol surviving client dropouts.

The paper treats secure aggregation as a black box; this example opens
the box.  Ten clients run the four-round Bonawitz et al. protocol —
Diffie-Hellman key advertisement, Shamir key sharing, double-masked
input collection, and unmasking — while two of them crash mid-protocol:
one before uploading its masked input and one after.  The survivors'
shares let the server recover exactly the masks it is entitled to
remove, so the sum of the nine clients that contributed inputs comes
out correct, and nothing about any individual input is revealed.

Run:
    python examples/secure_aggregation.py
"""

import numpy as np

from repro.secagg import run_bonawitz
from repro.secagg.bonawitz import ROUND_MASKED_INPUT, ROUND_UNMASK

NUM_CLIENTS = 10
DIMENSION = 128
MODULUS = 2**16
THRESHOLD = 6


def main() -> None:
    rng = np.random.default_rng(42)

    # Each client holds a private integer vector over Z_m (in FL these
    # would be SMM-perturbed gradients; here random data keeps the
    # example self-contained).
    inputs = rng.integers(
        0, MODULUS, size=(NUM_CLIENTS, DIMENSION), dtype=np.int64
    )

    # Client 3 dies before sending its masked input (round 2) and
    # client 7 dies after sending it but before unmasking (round 3).
    dropouts = {3: ROUND_MASKED_INPUT, 7: ROUND_UNMASK}

    outcome = run_bonawitz(
        inputs,
        modulus=MODULUS,
        threshold=THRESHOLD,
        rng=rng,
        dropouts=dropouts,
    )

    print(f"clients: {NUM_CLIENTS}, Shamir threshold: {THRESHOLD}")
    print(f"dropped mid-protocol: {sorted(outcome.dropped)}")
    print(f"inputs included in the sum: {sorted(outcome.included)}")

    # Client 7 dropped *after* contributing, so its input is in the sum
    # (the survivors reconstructed its self-mask seed).  Client 3
    # dropped *before* contributing, so its lingering pairwise masks
    # were reconstructed and removed instead.
    expected = np.mod(
        inputs[[u - 1 for u in sorted(outcome.included)]].sum(axis=0),
        MODULUS,
    )
    correct = bool(np.array_equal(outcome.modular_sum, expected))
    print(f"recovered modular sum matches the survivors' true sum: {correct}")
    print(f"first 8 coordinates: {outcome.modular_sum[:8].tolist()}")

    assert correct, "protocol failed to recover the correct sum"
    assert 7 in outcome.included, "post-input dropout should stay included"
    assert 3 in outcome.dropped, "pre-input dropout should be excluded"


if __name__ == "__main__":
    main()
