"""Why integer noise: Mironov's floating-point attack, reproduced.

Section 1 of the paper ("Remark on integer-valued noises") motivates
SMM's integer output with Mironov's CCS 2012 result: additive DP
mechanisms implemented in floating-point arithmetic leak their inputs,
because the reachable outputs form a sparse, input-dependent subset of
the floats.  This example runs the attack end to end at a reduced
(enumerable) precision:

1. build the reachable-output sets of ``answer + Laplace(scale)`` for
   two candidate answers,
2. observe single mechanism outputs and identify the answer by support
   membership — success rate is near 1, with zero wrong conclusions,
3. repeat against integer Skellam noise, where every answer's support
   is all of Z and the attack never concludes anything.

Run:
    python examples/floating_point_attack.py
"""

import numpy as np

from repro.attacks import (
    attack_success_rate,
    integer_mechanism_support,
    mironov_distinguisher,
    porous_support,
)
from repro.sampling.fast import skellam_noise

SCALE = 1.0  # Laplace scale = sensitivity / epsilon
ANSWERS = (0.0, 1.0 / 3.0)  # the two database-dependent query answers
TRIALS = 1000


def attack_float_mechanism() -> None:
    print("=== floating-point Laplace mechanism (12 mantissa bits) ===")
    s0 = porous_support(ANSWERS[0], SCALE)
    s1 = porous_support(ANSWERS[1], SCALE)
    print(f"reachable outputs under answer {ANSWERS[0]}: {len(s0)}")
    print(f"reachable outputs under answer {ANSWERS[1]}: {len(s1)}")
    print(f"outputs reachable under both: {len(s0 & s1)}")

    report = attack_success_rate(
        SCALE, np.random.default_rng(0), trials=TRIALS, answers=ANSWERS
    )
    print(f"single-observation identification rate: "
          f"{100 * report.success_rate:.1f}% "
          f"({report.identified}/{report.trials}, "
          f"{report.errors} wrong)")


def attack_integer_mechanism() -> None:
    print("\n=== integer Skellam mechanism, same adversary ===")
    rng = np.random.default_rng(1)
    lam = 8.0
    # Truncated Skellam support: wide enough to contain every sample.
    support = np.arange(-200, 201)
    s0 = integer_mechanism_support(0, support)
    s1 = integer_mechanism_support(1, support)
    print(f"support under answer 0 == support under answer 1 shifted: "
          f"{s1 == frozenset(v + 1 for v in s0)}")

    concluded = 0
    for _ in range(TRIALS):
        secret = int(rng.integers(0, 2))
        observed = secret + int(skellam_noise(lam, 1, rng)[0])
        if mironov_distinguisher(float(observed), s0, s1) is not None:
            concluded += 1
    print(f"observations the attacker could conclude anything from: "
          f"{concluded}/{TRIALS}")
    print("privacy now degrades only through the bounded probability")
    print("ratio — which is exactly the (eps, delta) the mechanism claims.")


def main() -> None:
    attack_float_mechanism()
    attack_integer_mechanism()


if __name__ == "__main__":
    main()
