"""A real-socket secure-aggregation round, end to end, in one process.

Boots a :class:`repro.net.SecAggServer` on an ephemeral localhost port,
runs a 16-client swarm against it — three clients dropping out at the
masked-input phase, one speaking an unsupported protocol version — and
then verifies two things the paper's threat model cares about:

* the aggregate is **bit-identical** to the in-memory
  :func:`repro.secagg.bonawitz.run_bonawitz` reference fed the same
  seeds and dropout schedule (the network stack adds transport, never
  semantics); and
* the live ``/metrics`` endpoint serves per-phase wall-clock latency
  histograms under the same family names the simulator uses, so one
  dashboard reads both.

Run:
    python examples/network_round.py

The same round is available from the CLI as two halves:
    repro serve --cohort 16 --rounds 1 &
    repro swarm --port <port> --clients 16 --dropouts 3
"""

import asyncio

from repro.net import (
    SecAggServer,
    ServerConfig,
    SwarmConfig,
    expected_digest,
    run_swarm,
    scrape_metrics,
)
from repro.telemetry import parse_prometheus

SWARM = SwarmConfig(
    clients=16,
    dimension=32,
    modulus=2**16,
    threshold=8,
    dropouts=3,
    bad_version=1,
    seed=2022,
)


async def main() -> None:
    server = SecAggServer(
        ServerConfig(
            # The bad-version client joins at the transport level and
            # is refused by the protocol at Hello, so it still counts
            # toward the forming cohort.
            cohort_size=SWARM.clients,
            threshold=8,
            dimension=SWARM.dimension,
        )
    )
    async with server:
        print(f"server listening on 127.0.0.1:{server.port}")
        swarm_task = asyncio.ensure_future(
            run_swarm("127.0.0.1", server.port, SWARM)
        )
        (result,) = await server.serve_rounds()
        swarm = await swarm_task

        print(
            f"round finished in {result.wall_duration:.3f}s: "
            f"{len(result.included)} included, "
            f"{len(result.dropped)} dropped, "
            f"{len(result.rejected)} rejected"
        )
        for report in swarm.reports:
            if report.status != "completed":
                print(f"  client {report.index}: {report.status}"
                      + (f" ({report.detail})" if report.detail else ""))

        reference = expected_digest(SWARM)
        print(f"socket digest    {result.digest}")
        print(f"reference digest {reference}")
        assert result.digest == reference, "aggregate diverged!"
        print("bit-identical to the in-memory run_bonawitz reference")

        text = await scrape_metrics("127.0.0.1", server.metrics_port)
        parsed = parse_prometheus(text)
        print("\nper-phase wall latency (from /metrics):")
        for phase in ("advertise", "share-keys", "masked-input", "unmask"):
            seconds = parsed.value(
                "secagg_phase_wall_duration_seconds_sum", phase=phase
            )
            print(f"  {phase:<12s} {seconds * 1e3:8.2f}ms")


if __name__ == "__main__":
    asyncio.run(main())
