"""Differentially private federated learning (Section 6.2, Algorithm 3).

Trains the paper's MLP classifier on the synthetic MNIST surrogate under
distributed DP, comparing the Skellam mixture mechanism against the
centralised DPSGD baseline at the same (epsilon, delta).  Every record is
one FL participant; gradients flow through rotation, mixture clipping,
Skellam-mixture perturbation, mod-m wrapping and secure aggregation.

Run:
    python examples/federated_learning.py [--epsilon 3] [--bits 8]
"""

import argparse
import time
import warnings

import numpy as np

from repro import (
    CompressionConfig,
    GaussianMechanism,
    PrivacyBudget,
    SkellamMixtureMechanism,
)
from repro.fl import (
    FederatedTrainer,
    MLPClassifier,
    TrainingConfig,
    make_synthetic_images,
)


def train_once(mechanism, label, train, test, args) -> None:
    model = MLPClassifier(
        [train.num_features, args.hidden, train.num_classes],
        np.random.default_rng(args.seed),
    )
    budget = PrivacyBudget(epsilon=args.epsilon) if mechanism else None
    config = TrainingConfig(
        rounds=args.rounds,
        expected_batch=args.batch,
        budget=budget,
        learning_rate=args.learning_rate,
        eval_every=max(args.rounds // 4, 1),
    )
    trainer = FederatedTrainer(model, mechanism, train, test, config)
    start = time.time()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        history = trainer.run(np.random.default_rng(args.seed + 1))
    curve = ", ".join(
        f"r{r}={100 * a:.1f}%"
        for r, a in zip(history.evaluated_rounds, history.test_accuracies)
    )
    print(f"{label:22s} final={100 * history.final_accuracy:5.1f}%  "
          f"[{curve}]  ({time.time() - start:.0f}s)")
    if history.mechanism_summary:
        print(f"{'':22s} {history.mechanism_summary}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epsilon", type=float, default=3.0)
    parser.add_argument("--bits", type=int, default=8)
    parser.add_argument("--gamma", type=float, default=32.0)
    parser.add_argument("--participants", type=int, default=12_000)
    parser.add_argument("--batch", type=int, default=100)
    parser.add_argument("--rounds", type=int, default=100)
    parser.add_argument("--hidden", type=int, default=16)
    parser.add_argument("--learning-rate", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed + 100)
    train, test = make_synthetic_images(
        args.participants, 500, noise_scale=0.35, rng=rng
    )
    print(f"participants={train.num_records}, "
          f"epsilon={args.epsilon}, m=2^{args.bits}, gamma={args.gamma}, "
          f"|B|={args.batch}, T={args.rounds}\n")

    train_once(None, "non-private", train, test, args)
    train_once(GaussianMechanism(), "dpsgd (centralised)", train, test, args)
    train_once(
        SkellamMixtureMechanism(
            CompressionConfig(modulus=2**args.bits, gamma=args.gamma)
        ),
        f"smm ({args.bits}-bit pipe)",
        train,
        test,
        args,
    )


if __name__ == "__main__":
    main()
