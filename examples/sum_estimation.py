"""Compare all six mechanisms on distributed sum estimation (Section 6.1).

A miniature of the paper's Figure 1: n points on the unit L2 sphere,
per-dimension mse at several privacy levels, for SMM and every baseline,
at one (modulus, gamma) operating point.  Use ``--dimension 65536`` and
``--epsilons 1 2 3 4 5`` for the full paper workload (slower).

Run:
    python examples/sum_estimation.py [--dimension 4096] [--bits 14]
"""

import argparse

import numpy as np

from repro import (
    CompressionConfig,
    CpSgdMechanism,
    DiscreteGaussianMixtureMechanism,
    DistributedDiscreteGaussian,
    GaussianMechanism,
    PrivacyBudget,
    SkellamMechanism,
    SkellamMixtureMechanism,
)
from repro.sumestimation import (
    format_results_table,
    run_sum_estimation,
    sample_sphere,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--participants", type=int, default=100)
    parser.add_argument("--dimension", type=int, default=4096)
    parser.add_argument("--bits", type=int, default=14,
                        help="communication bitwidth per dimension")
    parser.add_argument("--gamma", type=float, default=None,
                        help="scale parameter (default: m / 256)")
    parser.add_argument("--epsilons", type=float, nargs="+",
                        default=[1.0, 3.0, 5.0])
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    modulus = 2**args.bits
    gamma = args.gamma if args.gamma is not None else modulus / 256.0
    compression = CompressionConfig(modulus=modulus, gamma=gamma)
    print(f"n={args.participants}, d={args.dimension}, "
          f"m=2^{args.bits}, gamma={gamma}\n")

    rng = np.random.default_rng(args.seed)
    values = sample_sphere(args.participants, args.dimension, rng)

    factories = {
        "gaussian": GaussianMechanism,
        "smm": lambda: SkellamMixtureMechanism(compression),
        "skellam": lambda: SkellamMechanism(compression),
        "ddg": lambda: DistributedDiscreteGaussian(compression),
        "dgm": lambda: DiscreteGaussianMixtureMechanism(compression),
        "cpsgd": lambda: CpSgdMechanism(compression),
    }

    results = []
    for epsilon in args.epsilons:
        for name, factory in factories.items():
            result = run_sum_estimation(
                factory(),
                values,
                PrivacyBudget(epsilon=epsilon),
                rng,
                trials=args.trials,
            )
            results.append(result)
            print(f"eps={epsilon:4.1f}  {name:9s} mse={result.mse:12.4g}")

    print("\n" + format_results_table(results))


if __name__ == "__main__":
    main()
