"""Hierarchical sharded secure aggregation over a multi-process backend.

A flat Bonawitz round costs O(n^2) in pairwise masks and Shamir shares.
Production federations (DDP-SA; the Truex et al. hybrid) therefore run
*hierarchically*: the cohort is partitioned into k shards, each shard
runs its own dropout-tolerant secure-aggregation instance, and the
shard sums compose with one outer modular addition — bit-identical to
the flat sum over the same survivors, at O(n^2 / k) total work, with
the shards embarrassingly parallel.

This example trains the same Skellam-mixture pipeline as
``async_simulation.py`` but with ``shards=4``, twice: once on the
``"inline"`` backend (shards run sequentially in this process) and once
on the ``"process"`` backend (shards fan out over an OS process pool).
It demonstrates:

* **exactness** — every round's composed aggregate equals the
  survivors' direct modular sum (the ``verify_aggregate`` oracle);
* **backend determinism** — inline and multi-process execution yield
  the same final model parameters, hash for hash, because every shard
  derives its randomness from spawn-keyed seeds fixed before dispatch.

Run:
    python examples/sharded_simulation.py
"""

import dataclasses
import warnings

from repro.simulation import (
    BernoulliDropout,
    SimulationConfig,
    SimulationEngine,
)

CONFIG = SimulationConfig(
    population_size=32,
    expected_cohort=16,
    rounds=2,
    modulus=2**16,
    gamma=16.0,
    epsilon=5.0,
    hidden=4,
    test_records=64,
    phase_timeout=30.0,
    seed=7,
    verify_aggregate=True,
    shards=4,
)


def run(backend: str):
    config = dataclasses.replace(CONFIG, backend=backend)
    engine = SimulationEngine(config, availability=BernoulliDropout(0.15))
    return engine.run()


def main() -> None:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # Overflow is part of the data.

        print(f"population: {CONFIG.population_size} clients, "
              f"expected cohort {CONFIG.expected_cohort}, "
              f"{CONFIG.rounds} rounds, {CONFIG.shards} shards/round")
        inline = run("inline")
        for record in inline.records:
            print(f"  round {record.index}: cohort={len(record.cohort):2d} "
                  f"included={len(record.included):2d} "
                  f"dropped={len(record.dropped):2d} "
                  f"eps so far={record.epsilon:5.2f} "
                  f"aggregate exact={record.aggregate_matches}")
        assert all(
            r.aggregate_matches for r in inline.records if not r.aborted
        ), "composed shard sums must equal the survivors' modular sum"
        print(f"cumulative privacy: eps={inline.epsilon:.3f}, "
              f"delta={inline.delta:g}")

        multiproc = run("process")
        identical = multiproc.parameters_digest == inline.parameters_digest
        print(f"backend-identical: {identical}")
        assert identical, (
            "inline and process backends must produce identical parameters"
        )


if __name__ == "__main__":
    main()
