"""Exact integer-arithmetic noise sampling (Appendix A).

Demonstrates the exact samplers — Poisson via Duchon-Duvignau, Skellam as
a Poisson difference, and the Canonne-Kamath-Steinke discrete Gaussian —
whose output distribution matches the analytical form exactly (no
floating-point gap for Mironov's attack to exploit), and contrasts their
speed against the vectorised floating-point samplers, mirroring the
Table 1 comparison.

Run:
    python examples/exact_sampling.py [--samples 3000]
"""

import argparse
import time

import numpy as np

from repro.sampling import (
    ExactDiscreteGaussianSampler,
    ExactSkellamSampler,
    RandIntSource,
    discrete_gaussian_noise,
    sample_poisson,
    skellam_noise,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=3000)
    parser.add_argument("--variance", type=float, default=4.0)
    args = parser.parse_args()
    count = args.samples
    variance = args.variance

    # Exact Poisson (Algorithm 10): rational rate 7/2.
    source = RandIntSource(seed=0)
    start = time.time()
    poisson_draws = [sample_poisson(7, 2, source) for _ in range(count)]
    poisson_time = time.time() - start
    print(f"exact Poisson(7/2):   mean={np.mean(poisson_draws):.3f} "
          f"(expect 3.5), {poisson_time:.2f}s for {count} samples")

    # Exact Skellam with variance 2*lam = `variance`.
    lam = variance / 2.0
    skellam_sampler = ExactSkellamSampler(lam=lam, seed=1)
    start = time.time()
    skellam_draws = skellam_sampler.sample_many(count)
    skellam_time = time.time() - start
    print(f"exact Skellam:        var={np.var(skellam_draws):.3f} "
          f"(expect {variance}), {skellam_time:.2f}s")

    # Exact discrete Gaussian with parameter sigma^2 = `variance`.
    dg_sampler = ExactDiscreteGaussianSampler(sigma_squared=variance, seed=2)
    start = time.time()
    dg_draws = dg_sampler.sample_many(count)
    dg_time = time.time() - start
    print(f"exact discrete Gauss: var={np.var(dg_draws):.3f} "
          f"(expect ~{variance}), {dg_time:.2f}s")

    # Fast floating-point counterparts (the TF-style samplers of Sec. 6).
    rng = np.random.default_rng(3)
    start = time.time()
    fast_skellam = skellam_noise(lam, count, rng)
    fast_skellam_time = time.time() - start
    start = time.time()
    fast_dg = discrete_gaussian_noise(variance, count, rng)
    fast_dg_time = time.time() - start
    print(f"\nfast Skellam:         var={fast_skellam.var():.3f}, "
          f"{fast_skellam_time * 1e3:.2f}ms")
    print(f"fast discrete Gauss:  var={fast_dg.var():.3f}, "
          f"{fast_dg_time * 1e3:.2f}ms")

    speedup_sk = skellam_time / max(fast_skellam_time, 1e-9)
    speedup_dg = dg_time / max(fast_dg_time, 1e-9)
    print(f"\nfast-vs-exact speedup: Skellam ~{speedup_sk:.0f}x, "
          f"discrete Gaussian ~{speedup_dg:.0f}x "
          "(Table 1's exact/approximate gap)")


if __name__ == "__main__":
    main()
