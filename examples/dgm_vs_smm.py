"""Skellam mixture vs discrete Gaussian mixture (Appendix B, Figure 4).

The mixture construction is noise-agnostic: Appendix B instantiates it
with discrete Gaussian noise (DGM).  This example reproduces the
Figure 4 comparison on distributed sum estimation: DGM tracks SMM at
generous bitwidths but degrades at small ones, because (i) sums of
discrete Gaussians are not discrete Gaussian (the tau_n gap of Eq. (7))
and (ii) the per-participant sigma is rounded up to an integer.

Run:
    python examples/dgm_vs_smm.py [--dimension 4096]
"""

import argparse

import numpy as np

from repro import (
    CompressionConfig,
    DiscreteGaussianMixtureMechanism,
    GaussianMechanism,
    PrivacyBudget,
    SkellamMixtureMechanism,
)
from repro.sumestimation import run_sum_estimation, sample_sphere


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--participants", type=int, default=100)
    parser.add_argument("--dimension", type=int, default=4096)
    parser.add_argument("--epsilons", type=float, nargs="+",
                        default=[1.0, 3.0, 5.0])
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    values = sample_sphere(args.participants, args.dimension, rng)

    # The Figure 4 grid: (10, 14, 18)-bit pipes with gamma = m / 256.
    operating_points = [(10, 4.0), (14, 64.0), (18, 1024.0)]

    header = f"{'eps':>5s} {'gaussian':>12s}"
    for bits, _ in operating_points:
        header += f" {'smm-' + str(bits) + 'b':>12s} {'dgm-' + str(bits) + 'b':>12s}"
    print(header)

    for epsilon in args.epsilons:
        budget = PrivacyBudget(epsilon=epsilon)
        row = [f"{epsilon:5.1f}"]
        baseline = run_sum_estimation(
            GaussianMechanism(), values, budget, rng, trials=args.trials
        )
        row.append(f"{baseline.mse:12.4g}")
        for bits, gamma in operating_points:
            compression = CompressionConfig(modulus=2**bits, gamma=gamma)
            for factory in (
                lambda: SkellamMixtureMechanism(compression),
                lambda: DiscreteGaussianMixtureMechanism(compression),
            ):
                result = run_sum_estimation(
                    factory(), values, budget, rng, trials=args.trials
                )
                row.append(f"{result.mse:12.4g}")
        print(" ".join(row))

    print("\nexpected shape: both mixtures track the continuous-Gaussian "
          "baseline at 14/18 bits;\nDGM falls behind SMM at 10 bits "
          "(integer-sigma rounding + the tau_n non-closure gap).")


if __name__ == "__main__":
    main()
