"""Figure 1: distributed sum estimation mse vs epsilon.

Paper workload: n = 100 points on the unit L2 sphere, d = 65536,
delta = 1e-5, epsilon in {1..5}, communication bitwidth m in
{2^10, 2^12, 2^14, 2^16, 2^18} with gamma in {4, 16, 64, 256, 1024}
(first row of the figure; the second row doubles gamma).

This benchmark regenerates the three bitwidths that span the figure's
regimes — (2^10, 4) where only SMM stays near the Gaussian baseline,
(2^14, 64) where SMM clearly leads, and (2^18, 1024) where
Skellam/DDG converge to the baseline and SMM trails by Corollary 2's
constant factor — at epsilon in {1, 3, 5}.

Expected shape (paper): SMM << Skellam ~= DDG at small m; cpSGD off the
chart everywhere; all distributed mechanisms -> Gaussian as m grows,
with SMM slightly above at 2^18.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # figure reproduction: minutes of wall time

from repro.config import CompressionConfig, PrivacyBudget
from repro.mechanisms import (
    CpSgdMechanism,
    DistributedDiscreteGaussian,
    GaussianMechanism,
    SkellamMechanism,
    SkellamMixtureMechanism,
)
from repro.sumestimation import run_sum_estimation, sample_sphere

from benchmarks.conftest import FULL_SCALE

NUM_POINTS = 100
DIMENSION = 65_536 if FULL_SCALE else 16_384
EPSILONS = [1.0, 3.0, 5.0]
PANELS = {
    "2^10": (2**10, 4.0),
    "2^14": (2**14, 64.0),
    "2^18": (2**18, 1024.0),
}
MECHANISMS = ["gaussian", "smm", "skellam", "ddg", "cpsgd"]


@pytest.fixture(scope="module")
def sphere(bench_rng):
    return sample_sphere(NUM_POINTS, DIMENSION, bench_rng)


def _build(name: str, compression: CompressionConfig):
    factories = {
        "gaussian": lambda: GaussianMechanism(),
        "smm": lambda: SkellamMixtureMechanism(compression),
        "skellam": lambda: SkellamMechanism(compression),
        "ddg": lambda: DistributedDiscreteGaussian(compression),
        "cpsgd": lambda: CpSgdMechanism(compression),
    }
    return factories[name]()


@pytest.mark.parametrize("panel", list(PANELS))
@pytest.mark.parametrize("mechanism_name", MECHANISMS)
def test_fig1_panel(benchmark, emit, sphere, bench_rng, panel, mechanism_name):
    """One mse-vs-epsilon series of Figure 1 (one mechanism, one panel)."""
    modulus, gamma = PANELS[panel]
    compression = CompressionConfig(modulus=modulus, gamma=gamma)

    def run_series():
        series = []
        for epsilon in EPSILONS:
            mechanism = _build(mechanism_name, compression)
            result = run_sum_estimation(
                mechanism,
                sphere,
                PrivacyBudget(epsilon=epsilon),
                bench_rng,
                trials=1,
            )
            series.append(result.mse)
        return series

    series = benchmark.pedantic(run_series, rounds=1, iterations=1)
    cells = "  ".join(
        f"eps={eps:.0f}:{mse:11.4g}" for eps, mse in zip(EPSILONS, series)
    )
    emit(
        f"[fig1 m={panel} gamma={gamma:g} d={DIMENSION}] "
        f"{mechanism_name:9s} {cells}",
        filename="fig1.txt",
    )
    assert all(np.isfinite(series)) and all(mse > 0 for mse in series)
