"""Figure 4: DGM vs SMM on distributed sum estimation (Appendix B.3).

Paper workload: the Figure 1 dataset with m in {2^10, 2^14, 2^18} and
gamma in {4, 64, 1024}; series are mse vs epsilon for SMM and DGM at
each bitwidth, plus the continuous Gaussian reference.

Expected shape (paper): DGM tracks SMM at 14/18 bits; at 10 bits DGM is
worse and steps in plateaus (integer-sigma rounding) while SMM degrades
smoothly; both sit near the Gaussian baseline at 18 bits.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # figure reproduction: minutes of wall time

from repro.config import CompressionConfig, PrivacyBudget
from repro.mechanisms import (
    DiscreteGaussianMixtureMechanism,
    GaussianMechanism,
    SkellamMixtureMechanism,
)
from repro.sumestimation import run_sum_estimation, sample_sphere

from benchmarks.conftest import FULL_SCALE

NUM_POINTS = 100
DIMENSION = 65_536 if FULL_SCALE else 16_384
EPSILONS = [1.0, 3.0, 5.0]
PANELS = {"10bit": (2**10, 4.0), "14bit": (2**14, 64.0), "18bit": (2**18, 1024.0)}


@pytest.fixture(scope="module")
def sphere(bench_rng):
    return sample_sphere(NUM_POINTS, DIMENSION, bench_rng)


def _series(factory, sphere, rng):
    mses = []
    for epsilon in EPSILONS:
        result = run_sum_estimation(
            factory(), sphere, PrivacyBudget(epsilon=epsilon), rng, trials=1
        )
        mses.append(result.mse)
    return mses


@pytest.mark.parametrize("panel", list(PANELS))
@pytest.mark.parametrize("mixture", ["smm", "dgm"])
def test_fig4_mixture_series(benchmark, emit, sphere, bench_rng, panel, mixture):
    """One SMM/DGM series of Figure 4."""
    modulus, gamma = PANELS[panel]
    compression = CompressionConfig(modulus=modulus, gamma=gamma)
    factory = (
        (lambda: SkellamMixtureMechanism(compression))
        if mixture == "smm"
        else (lambda: DiscreteGaussianMixtureMechanism(compression))
    )
    series = benchmark.pedantic(
        lambda: _series(factory, sphere, bench_rng), rounds=1, iterations=1
    )
    cells = "  ".join(
        f"eps={eps:.0f}:{mse:11.4g}" for eps, mse in zip(EPSILONS, series)
    )
    emit(
        f"[fig4 {panel} gamma={gamma:g} d={DIMENSION}] {mixture:4s} {cells}",
        filename="fig4.txt",
    )
    assert all(np.isfinite(series))


def test_fig4_gaussian_reference(benchmark, emit, sphere, bench_rng):
    """The continuous-Gaussian reference line of Figure 4."""
    series = benchmark.pedantic(
        lambda: _series(GaussianMechanism, sphere, bench_rng),
        rounds=1,
        iterations=1,
    )
    cells = "  ".join(
        f"eps={eps:.0f}:{mse:11.4g}" for eps, mse in zip(EPSILONS, series)
    )
    emit(f"[fig4 reference d={DIMENSION}] gaussian {cells}", filename="fig4.txt")
    assert all(np.isfinite(series))
