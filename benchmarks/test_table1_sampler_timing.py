"""Table 1: running time of exact vs approximate noise samplers.

Paper workload: generate 1e5 samples from Skellam and discrete Gaussian
at variance in {32, 16, 8, 4, 2, 1}, with (i) the exact integer-
arithmetic samplers (sequential) and (ii) the floating-point batch
samplers (the paper uses TensorFlow's; ours are the vectorised numpy
equivalents), reporting seconds per batch.

Expected shape (paper): exact Skellam gets *faster* as the variance
shrinks (Algorithm 10 peels off fewer Poisson(1) components) and beats
exact discrete Gaussian at small variance; the exact discrete Gaussian
cost is roughly variance-independent; the approximate samplers are
orders of magnitude faster, with Skellam ahead of discrete Gaussian.

The default sample count is scaled down from 1e5 so the whole table
runs in seconds; timings are reported normalised to 1e5 samples for
direct comparison with the paper's Table 1.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # figure reproduction: minutes of wall time

from repro.sampling import (
    ExactDiscreteGaussianSampler,
    ExactSkellamSampler,
    discrete_gaussian_noise,
    skellam_noise,
)

from benchmarks.conftest import FULL_SCALE

VARIANCES = [32.0, 16.0, 8.0, 4.0, 2.0, 1.0]
EXACT_SAMPLES = 100_000 if FULL_SCALE else 2_000
FAST_SAMPLES = 100_000
PAPER_SCALE = 100_000


@pytest.mark.parametrize("variance", VARIANCES)
def test_exact_skellam(benchmark, emit, variance):
    """Row 'Exact Skellam' of Table 1."""
    sampler = ExactSkellamSampler(lam=variance / 2.0, seed=0)
    benchmark.pedantic(
        lambda: sampler.sample_many(EXACT_SAMPLES), rounds=1, iterations=1
    )
    normalised = benchmark.stats.stats.mean * PAPER_SCALE / EXACT_SAMPLES
    emit(
        f"[table1] exact-skellam   var={variance:5.1f}  "
        f"{normalised:8.2f}s per 1e5 samples",
        filename="table1.txt",
    )


@pytest.mark.parametrize("variance", VARIANCES)
def test_exact_discrete_gaussian(benchmark, emit, variance):
    """Row 'Exact DG' of Table 1."""
    sampler = ExactDiscreteGaussianSampler(sigma_squared=variance, seed=0)
    benchmark.pedantic(
        lambda: sampler.sample_many(EXACT_SAMPLES), rounds=1, iterations=1
    )
    normalised = benchmark.stats.stats.mean * PAPER_SCALE / EXACT_SAMPLES
    emit(
        f"[table1] exact-dg        var={variance:5.1f}  "
        f"{normalised:8.2f}s per 1e5 samples",
        filename="table1.txt",
    )


@pytest.mark.parametrize("variance", VARIANCES)
def test_fast_skellam(benchmark, emit, variance):
    """Row 'TF Skellam' of Table 1 (vectorised numpy equivalent)."""
    rng = np.random.default_rng(0)
    benchmark(lambda: skellam_noise(variance / 2.0, FAST_SAMPLES, rng))
    normalised = benchmark.stats.stats.mean * PAPER_SCALE / FAST_SAMPLES
    emit(
        f"[table1] fast-skellam    var={variance:5.1f}  "
        f"{normalised:8.4f}s per 1e5 samples",
        filename="table1.txt",
    )


@pytest.mark.parametrize("variance", VARIANCES)
def test_fast_discrete_gaussian(benchmark, emit, variance):
    """Row 'TF DG' of Table 1 (vectorised numpy equivalent)."""
    rng = np.random.default_rng(0)
    benchmark(lambda: discrete_gaussian_noise(variance, FAST_SAMPLES, rng))
    normalised = benchmark.stats.stats.mean * PAPER_SCALE / FAST_SAMPLES
    emit(
        f"[table1] fast-dg         var={variance:5.1f}  "
        f"{normalised:8.4f}s per 1e5 samples",
        filename="table1.txt",
    )
