"""Real-socket SecAgg service throughput: rounds/sec vs cohort size.

Unlike :mod:`benchmarks.test_sim_throughput` (simulated clock, in-memory
transport), every round here is a full localhost TCP round: ``n``
concurrent :func:`repro.net.run_client` tasks against one
:class:`repro.net.SecAggServer`, with a 10% deterministic dropout
schedule.  Each cohort's aggregate is verified bit-identical to
:func:`repro.secagg.bonawitz.run_bonawitz` before its row is recorded,
so the numbers can never come from a silently wrong round.

Reported per cohort: rounds/sec and the p50/p99 wall-clock latency of
each protocol phase, read from the *same*
``secagg_phase_wall_duration_seconds`` histogram family the simulator
meters into.  Cohorts 16 and 64 run in tier-1; 128 rides the slow tier.
Results land in ``benchmarks/results/net_throughput.txt``.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.net import (
    SecAggServer,
    ServerConfig,
    SwarmConfig,
    expected_digest,
    run_swarm,
)

RESULTS_FILE = "net_throughput.txt"
DIMENSION = 64
MODULUS = 2**16
ROUNDS = 3
PHASES = ("advertise", "share-keys", "masked-input", "unmask")


def _run_cohort(cohort: int, rounds: int = ROUNDS):
    """``rounds`` localhost swarm rounds; returns (rounds/sec, snapshot).

    Every round is digest-checked against the in-memory reference
    before it counts.
    """
    dropouts = cohort // 10
    threshold = cohort // 2
    swarm_cfg = SwarmConfig(
        clients=cohort,
        dimension=DIMENSION,
        modulus=MODULUS,
        threshold=threshold,
        dropouts=dropouts,
        seed=20220601,
    )
    reference = expected_digest(swarm_cfg)

    async def scenario():
        server = SecAggServer(
            ServerConfig(
                cohort_size=cohort,
                dimension=DIMENSION,
                modulus=MODULUS,
                threshold=threshold,
                rounds=rounds,
                metrics_port=None,
            )
        )
        async with server:
            serve = asyncio.ensure_future(server.serve_rounds())
            started = time.perf_counter()
            for _ in range(rounds):
                await run_swarm("127.0.0.1", server.port, swarm_cfg)
            results = await asyncio.wait_for(serve, 600)
            elapsed = time.perf_counter() - started
        return results, elapsed, server.metrics.snapshot()

    results, elapsed, snapshot = asyncio.run(scenario())
    for result in results:
        assert result.aborted is None, result.aborted
        assert result.digest == reference, (
            f"cohort {cohort}: socket aggregate diverged from run_bonawitz"
        )
    return rounds / elapsed, snapshot


def _emit_rows(emit, cohort, rate, snapshot):
    emit(
        f"net cohort={cohort:4d} rounds/sec={rate:7.2f}",
        RESULTS_FILE,
    )
    for phase in PHASES:
        p50 = snapshot.quantile(
            "secagg_phase_wall_duration_seconds", 0.50, phase=phase
        )
        p99 = snapshot.quantile(
            "secagg_phase_wall_duration_seconds", 0.99, phase=phase
        )
        emit(
            f"net cohort={cohort:4d} phase={phase:<12s} "
            f"p50={p50 * 1e3:8.2f}ms p99={p99 * 1e3:8.2f}ms",
            RESULTS_FILE,
        )


@pytest.mark.parametrize("cohort", [16, 64])
def test_net_round_throughput(emit, cohort):
    rate, snapshot = _run_cohort(cohort)
    assert rate > 0
    _emit_rows(emit, cohort, rate, snapshot)


@pytest.mark.slow
def test_net_round_throughput_128(emit):
    rate, snapshot = _run_cohort(128)
    assert rate > 0
    _emit_rows(emit, 128, rate, snapshot)
