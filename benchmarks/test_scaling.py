"""Multi-core scaling study: process-backend shards vs rounds/sec.

The sharding layer's parallel win was unproven while every committed
number came off a single-core runner.  This axis measures the same
full-cohort round at k ∈ {1, 2, 4, 8} process-backend shards and
records the speedup-vs-one-shard curve into
``benchmarks/results/scaling.txt``; the emission's environment header
(CPU count, model) makes single-core runs self-identifying, and CI runs
the study on a multi-core runner and uploads the file as an artifact.

Two effects compose in the curve: ``k`` shards cut the quadratic
protocol work to ``O(n^2 / k)`` even on one core, and the process pool
overlaps the shard sub-rounds across however many cores exist — so
speedup above 1 is expected even single-core, and the gap between the
1-core and multi-core curves isolates the parallel win.

Slow-marked: the study is a CI/workstation measurement, not a tier-1
smoke.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.simulation import (
    BernoulliDropout,
    Population,
    ShardedSecAggRound,
    SimulatedClock,
    get_execution_backend,
)

RESULTS_FILE = "scaling.txt"
POPULATION = 256
DIMENSION = 64
MODULUS = 2**16
DROPOUT_RATE = 0.1
SHARD_COUNTS = (1, 2, 4, 8)
NUM_ROUNDS = 2


def _rounds_per_sec(shards: int, bench_rng: np.random.Generator) -> float:
    population = Population(
        POPULATION,
        availability=BernoulliDropout(DROPOUT_RATE),
        seed=20220601,
    )
    clock = SimulatedClock()
    executor = get_execution_backend("process")
    executor.warm()  # Pool spawn stays outside the timed window.
    started = time.perf_counter()
    try:
        for round_index in range(NUM_ROUNDS):
            cohort = population.sample_cohort(round_index, POPULATION)
            vectors = {
                u: bench_rng.integers(
                    0, MODULUS, size=DIMENSION, dtype=np.int64
                )
                for u in cohort
            }
            sharded_round = ShardedSecAggRound(
                vectors=vectors,
                modulus=MODULUS,
                clock=clock,
                rng=population.round_rng(round_index, purpose=2),
                shards=shards,
                plans=population.plans(round_index, cohort),
                phase_timeout=60.0,
                backend=executor,
            )
            outcome = sharded_round.execute()
            expected = np.zeros(DIMENSION, dtype=np.int64)
            for u in outcome.included:
                expected = np.mod(expected + vectors[u], MODULUS)
            assert np.array_equal(outcome.modular_sum, expected)
        elapsed = time.perf_counter() - started
    finally:
        executor.close()
    return NUM_ROUNDS / elapsed


@pytest.mark.slow
def test_process_backend_scaling(emit, bench_rng):
    """Rounds/sec and speedup across the k ∈ {1, 2, 4, 8} shard sweep."""
    cpus = os.cpu_count() or 1
    curve: dict[int, float] = {}
    for shards in SHARD_COUNTS:
        curve[shards] = _rounds_per_sec(shards, bench_rng)
    base = curve[SHARD_COUNTS[0]]
    for shards in SHARD_COUNTS:
        emit(
            f"scaling backend=process population={POPULATION} "
            f"full-cohort shards={shards} cpus={cpus} "
            f"rounds_per_sec={curve[shards]:8.3f} "
            f"speedup={curve[shards] / base:5.2f}x",
            RESULTS_FILE,
        )
    assert all(value > 0 for value in curve.values())
    # Sharding cuts the quadratic work by k even before cores overlap,
    # so the 8-shard point must beat flat — on any machine.
    assert curve[8] > curve[1]
