"""Kernel micro-benchmarks: mask PRG and Shamir throughput.

Measures the vectorised SecAgg kernels against the retained scalar
reference paths — masks/sec for the PRG backends (batched SHA-256
counter mode and numpy Philox vs the pre-kernel scalar loop) and
shares/sec for batched Shamir split/reconstruct vs the per-coefficient
Python loops.  Results land in ``benchmarks/results/kernels.txt``.

The smoke assertions run in tier 1: they only require the vectorised
kernels not to be *slower* than the scalar baselines (with generous
slack for timer noise), guarding against a regression that silently
reroutes the hot paths through scalar code.
"""

from __future__ import annotations

import time

import numpy as np

from repro.secagg.field import DEFAULT_FIELD
from repro.secagg.kernels import PhiloxPrg, Sha256CounterPrg
from repro.secagg.shamir import LimbShares
from repro.secagg.wire import (
    PROTOCOL_V1,
    WIRE_CODECS,
    UnmaskColumns,
    intern_header,
    route_sealed_stack,
)
from repro.secagg.prg import expand_mask_reference
from repro.secagg.shamir import (
    Share,
    reconstruct_secret_scalar,
    reconstruct_secrets,
    split_secret_scalar,
    split_secrets,
)

RESULTS_FILE = "kernels.txt"
MASK_DIMENSION = 512
MASK_BATCH = 48
MODULUS = 2**16
SHAMIR_THRESHOLD = 48
SHAMIR_SHARES = 96
SHAMIR_BATCH = 6


def _best_of(repeats: int, func) -> float:
    """Best-of-``repeats`` wall time — robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def test_mask_prg_throughput(emit):
    """Masks/sec: scalar reference vs batched SHA-256 vs Philox."""
    seeds = [bytes([i & 255, i >> 8]) * 16 for i in range(MASK_BATCH)]

    def scalar():
        for seed in seeds:
            expand_mask_reference(seed, MASK_DIMENSION, MODULUS)

    philox_prg = PhiloxPrg()
    scalar_time = _best_of(5, scalar)
    # Fresh instance per repetition: measures the hash loop itself, not
    # the per-instance expansion memo.
    sha_time = _best_of(
        5,
        lambda: Sha256CounterPrg().expand_batch(
            seeds, MASK_DIMENSION, MODULUS
        ),
    )
    philox_time = _best_of(
        5, lambda: philox_prg.expand_batch(seeds, MASK_DIMENSION, MODULUS)
    )
    for name, elapsed in [
        ("scalar-reference", scalar_time),
        ("sha256-ctr-batch", sha_time),
        ("philox-batch", philox_time),
    ]:
        emit(
            f"kernel_masks backend={name:17s} dimension={MASK_DIMENSION} "
            f"batch={MASK_BATCH} masks_per_sec={MASK_BATCH / elapsed:10.1f}",
            RESULTS_FILE,
        )
    # The sha256-ctr batch kernel hashes exactly what the scalar loop
    # hashes; it must not be slower (1.5x slack absorbs timer noise).
    assert sha_time <= scalar_time * 1.5

    # Caching makes re-expansion of the same seeds nearly free.
    sha_prg = Sha256CounterPrg()
    sha_prg.expand_batch(seeds, MASK_DIMENSION, MODULUS)  # warm the memo
    cached_time = _best_of(
        5, lambda: sha_prg.expand_batch(seeds, MASK_DIMENSION, MODULUS)
    )
    emit(
        f"kernel_masks backend={'sha256-ctr-cached':17s} "
        f"dimension={MASK_DIMENSION} batch={MASK_BATCH} "
        f"masks_per_sec={MASK_BATCH / cached_time:10.1f}",
        RESULTS_FILE,
    )
    assert cached_time <= sha_time


def test_shamir_throughput(emit, bench_rng):
    """Shares/sec: scalar split/reconstruct loops vs batched kernels."""
    field = DEFAULT_FIELD
    secrets = [
        int(bench_rng.integers(0, field.prime)) for _ in range(SHAMIR_BATCH)
    ]

    def scalar_split():
        for secret in secrets:
            split_secret_scalar(
                secret, SHAMIR_THRESHOLD, SHAMIR_SHARES, bench_rng, field
            )

    def batched_split_call():
        split_secrets(
            secrets, SHAMIR_THRESHOLD, SHAMIR_SHARES, bench_rng, field
        )

    scalar_split_time = _best_of(5, scalar_split)
    batched_split_time = _best_of(5, batched_split_call)
    total_shares = SHAMIR_BATCH * SHAMIR_SHARES
    emit(
        f"kernel_shamir op=split     path=scalar    t={SHAMIR_THRESHOLD} "
        f"n={SHAMIR_SHARES} batch={SHAMIR_BATCH} "
        f"shares_per_sec={total_shares / scalar_split_time:10.1f}",
        RESULTS_FILE,
    )
    emit(
        f"kernel_shamir op=split     path=batched   t={SHAMIR_THRESHOLD} "
        f"n={SHAMIR_SHARES} batch={SHAMIR_BATCH} "
        f"shares_per_sec={total_shares / batched_split_time:10.1f}",
        RESULTS_FILE,
    )
    assert batched_split_time <= scalar_split_time * 1.5

    share_matrix = split_secrets(
        secrets, SHAMIR_THRESHOLD, SHAMIR_SHARES, bench_rng, field
    )
    xs = list(range(1, SHAMIR_THRESHOLD + 1))
    rows = [
        [int(share_matrix[i, j]) for j in range(SHAMIR_THRESHOLD)]
        for i in range(SHAMIR_BATCH)
    ]
    share_objects = [
        [Share(x=x, y=y) for x, y in zip(xs, row)] for row in rows
    ]

    def scalar_reconstruct():
        for shares in share_objects:
            reconstruct_secret_scalar(shares, field)

    scalar_rec_time = _best_of(5, scalar_reconstruct)
    batched_rec_time = _best_of(
        5, lambda: reconstruct_secrets(xs, rows, field)
    )
    recovered = reconstruct_secrets(xs, rows, field)
    assert recovered == secrets  # exactness, not just speed
    total = SHAMIR_BATCH * SHAMIR_THRESHOLD
    emit(
        f"kernel_shamir op=reconstruct path=scalar  t={SHAMIR_THRESHOLD} "
        f"n={SHAMIR_SHARES} batch={SHAMIR_BATCH} "
        f"shares_per_sec={total / scalar_rec_time:10.1f}",
        RESULTS_FILE,
    )
    emit(
        f"kernel_shamir op=reconstruct path=batched t={SHAMIR_THRESHOLD} "
        f"n={SHAMIR_SHARES} batch={SHAMIR_BATCH} "
        f"shares_per_sec={total / batched_rec_time:10.1f}",
        RESULTS_FILE,
    )
    assert batched_rec_time <= scalar_rec_time * 1.5


WIRE_ROSTER = 96
WIRE_CIPHERTEXT = 33


def test_wire_codec_throughput(emit, bench_rng):
    """Frames/sec: scalar vs batched codec on the three bulk legs."""
    header = intern_header(PROTOCOL_V1, "sha256-ctr")
    scalar, batched = WIRE_CODECS["scalar"], WIRE_CODECS["batched"]
    recipients = list(range(1, WIRE_ROSTER + 1))
    ciphertexts = bench_rng.integers(
        0, 256, size=(WIRE_ROSTER, WIRE_CIPHERTEXT), dtype=np.uint8
    )
    vector = bench_rng.integers(0, MODULUS, size=512, dtype=np.int64)
    columns = UnmaskColumns(
        responder=1,
        peers=np.arange(2, WIRE_ROSTER + 2, dtype="<u4"),
        xs=np.full(WIRE_ROSTER, 1, dtype="<u4"),
        ys=bench_rng.integers(
            0, 2**61 - 1, size=WIRE_ROSTER, dtype=np.uint64
        ),
        key_shares={0: LimbShares(x=1, ys=(5, 6))},
    )
    times = {}
    for codec in (scalar, batched):
        times[codec.name] = _best_of(
            5,
            lambda c=codec: (
                c.encode_sealed_matrix(1, recipients, ciphertexts, header),
                c.encode_masked_input(1, vector, header),
                c.encode_unmask_columns(columns, header),
            ),
        )
        frames = WIRE_ROSTER + 2
        emit(
            f"kernel_wire codec={codec.name:8s} roster={WIRE_ROSTER} "
            f"frames_per_sec={frames / times[codec.name]:10.1f}",
            RESULTS_FILE,
        )
    # The batched codec exists to be faster on the quadratic leg; 1.5x
    # slack tolerates timer noise, not a rerouted hot path.
    assert times["batched"] <= times["scalar"] * 1.5

    datagram = batched.encode_sealed_matrix(
        1, recipients, ciphertexts, header
    )
    frame_len = len(datagram) // WIRE_ROSTER
    stack = np.stack(
        [
            np.frombuffer(datagram, dtype=np.uint8).reshape(
                WIRE_ROSTER, frame_len
            )
        ]
        * WIRE_ROSTER
    )
    route_time = _best_of(5, lambda: route_sealed_stack(stack))
    emit(
        f"kernel_wire codec=route    roster={WIRE_ROSTER} "
        f"frames_per_sec={WIRE_ROSTER * WIRE_ROSTER / route_time:10.1f}",
        RESULTS_FILE,
    )
