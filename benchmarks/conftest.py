"""Shared fixtures for the figure/table reproduction benchmarks.

Each benchmark regenerates one panel (or series) of a paper figure and
prints the measured rows through the ``emit`` fixture, which bypasses
pytest's output capture so the series tables appear in
``pytest benchmarks/ --benchmark-only`` output.  Results are also
appended to ``benchmarks/results/*.txt`` for EXPERIMENTS.md.

Scaled-down defaults (DESIGN.md §4): the accountant is exact at any
scale, so mechanism orderings and bitwidth crossovers match the paper;
absolute wall-clock-bounded quantities (rounds, dataset size) are
smaller.  Environment variable ``REPRO_BENCH_FULL=1`` switches the FL
benchmarks to the paper's full geometry (slow).
"""

from __future__ import annotations

import os
import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Paper-scale toggle for the heavy FL benches.
FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture
def emit(capsys):
    """Print a line through pytest's capture (and persist it to a file)."""

    def _emit(line: str, filename: str | None = None) -> None:
        with capsys.disabled():
            print(line)
        if filename is not None:
            RESULTS_DIR.mkdir(exist_ok=True)
            with open(RESULTS_DIR / filename, "a") as handle:
                handle.write(line + "\n")

    return _emit


@pytest.fixture(scope="session")
def bench_rng():
    """Session-wide deterministic generator for benchmark inputs."""
    return np.random.default_rng(20220601)
