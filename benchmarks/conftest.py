"""Shared fixtures for the figure/table reproduction benchmarks.

Each benchmark regenerates one panel (or series) of a paper figure and
prints the measured rows through the ``emit`` fixture, which bypasses
pytest's output capture so the series tables appear in
``pytest benchmarks/ --benchmark-only`` output.  Results are also
appended to ``benchmarks/results/*.txt`` for EXPERIMENTS.md.

Scaled-down defaults (DESIGN.md §4): the accountant is exact at any
scale, so mechanism orderings and bitwidth crossovers match the paper;
absolute wall-clock-bounded quantities (rounds, dataset size) are
smaller.  Environment variable ``REPRO_BENCH_FULL=1`` switches the FL
benchmarks to the paper's full geometry (slow).
"""

from __future__ import annotations

import os
import pathlib
import platform

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Paper-scale toggle for the heavy FL benches.
FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Rolling window per results file: appends beyond this many lines drop
#: the oldest lines, so repeated benchmark runs stop growing the files
#: without bound (overridable for archival runs).
RESULTS_MAX_LINES = int(os.environ.get("REPRO_BENCH_MAX_LINES", "60"))


def _cpu_model() -> str:
    try:
        for line in pathlib.Path("/proc/cpuinfo").read_text().splitlines():
            if line.lower().startswith("model name"):
                return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


#: One-line environment stamp prefixed to each session's emission block
#: per results file — committed trajectories are only comparable when
#: the hardware behind them is visible.
ENV_HEADER = (
    f'# env cpus={os.cpu_count()} cpu="{_cpu_model()}" '
    f"python={platform.python_version()}"
)

#: Results files already stamped with :data:`ENV_HEADER` this session.
_env_stamped: set[str] = set()


def _persist(line: str, filename: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    lines = path.read_text().splitlines() if path.exists() else []
    lines = [prior for prior in lines if prior != line]
    lines.append(line)
    path.write_text("\n".join(lines[-RESULTS_MAX_LINES:]) + "\n")


@pytest.fixture
def emit(capsys):
    """Print a line through pytest's capture (and persist it to a file).

    Persisted files keep a rolling window of the most recent
    :data:`RESULTS_MAX_LINES` lines, and appends are idempotent: a line
    identical to one already in the file (a re-run of a deterministic
    benchmark, a doubled CI artifact merge, results re-committed on top
    of themselves) *moves* the existing line to the tail instead of
    double-appending it, so repeated runs can never grow the file with
    duplicates.  The session's first persisted line per file is preceded
    by the :data:`ENV_HEADER` stamp, so each run's block records the
    hardware it was measured on.
    """

    def _emit(line: str, filename: str | None = None) -> None:
        with capsys.disabled():
            print(line)
        if filename is not None:
            if filename not in _env_stamped:
                _env_stamped.add(filename)
                _persist(ENV_HEADER, filename)
            _persist(line, filename)

    return _emit


@pytest.fixture(scope="session")
def best_of():
    """Best-of-N sampler for noise-sensitive measurements.

    Calls ``func`` ``repeats`` times and returns the result whose
    ``key`` is highest (default: the result itself — suited to
    throughput figures, where the best run is the least-perturbed one).
    """

    def _best(repeats: int, func, key=lambda result: result):
        best = None
        for _ in range(repeats):
            result = func()
            if best is None or key(result) > key(best):
                best = result
        return best

    return _best


@pytest.fixture(scope="session")
def bench_rng():
    """Session-wide deterministic generator for benchmark inputs."""
    return np.random.default_rng(20220601)
