"""Shared FL-benchmark configuration (Figures 2, 3 and 5).

Scaled-down geometry per DESIGN.md §4.  The scale map preserves the
regime ratio ``d / (4 gamma^2)`` that governs the conditional-rounding
penalty: the paper's (d = 63,610 -> padded 65,536, gamma = m/4) maps to
our (d = 12,730 -> padded 16,384, gamma = m/8), so each bitwidth sits in
the same sensitivity regime as the corresponding paper panel.

``REPRO_BENCH_FULL=1`` restores the paper's exact geometry (hidden=80,
60k participants, |B|=240, T=1000; hours of CPU time).
"""

from __future__ import annotations

import dataclasses
import time
import warnings

import numpy as np

from repro.config import CompressionConfig, PrivacyBudget
from repro.fl import (
    FederatedTrainer,
    MLPClassifier,
    TrainingConfig,
    fashion_mnist_surrogate,
    mnist_surrogate,
)
from repro.mechanisms import (
    CpSgdMechanism,
    DiscreteGaussianMixtureMechanism,
    DistributedDiscreteGaussian,
    GaussianMechanism,
    SkellamMechanism,
    SkellamMixtureMechanism,
)

from benchmarks.conftest import FULL_SCALE


@dataclasses.dataclass(frozen=True)
class FlBenchScale:
    """Geometry of one FL benchmark run."""

    participants: int
    test_records: int
    hidden: int
    batch: int
    rounds: int
    learning_rate: float


SCALE = (
    FlBenchScale(
        participants=60_000,
        test_records=10_000,
        hidden=80,
        batch=240,
        rounds=1000,
        learning_rate=0.005,
    )
    if FULL_SCALE
    else FlBenchScale(
        participants=12_000,
        test_records=500,
        hidden=16,
        batch=100,
        rounds=80,
        learning_rate=0.01,
    )
)

#: (modulus, gamma) per bitwidth; gamma = m/8 at bench scale preserves the
#: paper's d/(4 gamma^2) regime (gamma = m/4 at full scale).
GAMMA_DIVISOR = 4 if FULL_SCALE else 8
PANELS = {
    "2^6": (2**6, 2**6 / GAMMA_DIVISOR),
    "2^8": (2**8, 2**8 / GAMMA_DIVISOR),
    "2^10": (2**10, 2**10 / GAMMA_DIVISOR),
}

_DATASETS: dict[str, tuple] = {}


def load_dataset(name: str):
    """Build (and cache) the MNIST / Fashion-MNIST surrogate."""
    if name not in _DATASETS:
        rng = np.random.default_rng(20220602)
        maker = mnist_surrogate if name == "mnist" else fashion_mnist_surrogate
        _DATASETS[name] = maker(rng, SCALE.participants, SCALE.test_records)
    return _DATASETS[name]


def build_mechanism(name: str, compression: CompressionConfig | None):
    """Instantiate one of the paper's mechanisms by short name."""
    if name == "dpsgd":
        return GaussianMechanism()
    factories = {
        "smm": SkellamMixtureMechanism,
        "skellam": SkellamMechanism,
        "ddg": DistributedDiscreteGaussian,
        "dgm": DiscreteGaussianMixtureMechanism,
        "cpsgd": CpSgdMechanism,
    }
    return factories[name](compression)


def train_point(
    mechanism_name: str,
    panel: str | None,
    epsilon: float,
    batch: int | None = None,
    gamma: float | None = None,
    seed: int = 1,
) -> float:
    """Train one FL grid cell; returns final test accuracy (nan on
    infeasible calibration)."""
    from repro.errors import CalibrationError

    train, test = load_dataset(train_point.dataset)
    if panel is None:
        compression = None
    else:
        modulus, default_gamma = PANELS[panel]
        compression = CompressionConfig(
            modulus=modulus, gamma=gamma if gamma is not None else default_gamma
        )
    mechanism = build_mechanism(mechanism_name, compression)
    model = MLPClassifier(
        [train.num_features, SCALE.hidden, train.num_classes],
        np.random.default_rng(seed),
    )
    config = TrainingConfig(
        rounds=SCALE.rounds,
        expected_batch=batch if batch is not None else SCALE.batch,
        budget=PrivacyBudget(epsilon=epsilon),
        learning_rate=SCALE.learning_rate,
    )
    trainer = FederatedTrainer(model, mechanism, train, test, config)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            history = trainer.run(np.random.default_rng(seed + 1))
    except CalibrationError:
        return float("nan")
    return history.final_accuracy


#: Which surrogate the next train_point call uses (set per bench module).
train_point.dataset = "mnist"


def timed(fn):
    """Run ``fn`` returning (result, seconds)."""
    start = time.time()
    result = fn()
    return result, time.time() - start
