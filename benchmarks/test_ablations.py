"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they isolate the individual ingredients the
paper combines, quantifying what each contributes:

* **Rotation** (Algorithm 4 line 1): without the Walsh-Hadamard flatten,
  a spiky gradient concentrates in one coordinate and overflows the
  modular pipe.
* **Conversion** (Lemma 3): the CKS RDP->(eps,delta) conversion vs the
  classic ``tau + log(1/delta)/(alpha-1)`` bound.
* **Subsampling amplification** (Lemma 2): calibrated noise with and
  without Poisson amplification.
* **Integer sigma** (Appendix B.3): DGM's rounded-up sigma vs the exact
  calibrated sigma.
* **Mixture vs stochastic rounding**: the L2-norm inflation the mixture
  construction avoids.
"""

import math

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # figure reproduction: minutes of wall time

from repro.accounting.divergences import gaussian_rdp
from repro.accounting.rdp import rdp_to_dp
from repro.config import CompressionConfig, PrivacyBudget
from repro.core.calibration import AccountingSpec, calibrate_noise
from repro.core.skellam_mixture import smm_perturb
from repro.linalg.hadamard import RandomRotation
from repro.linalg.modular import wraps_around
from repro.mechanisms import InputSpec, SkellamMixtureMechanism
from repro.mechanisms.rounding import stochastic_round
from repro.sampling.fast import bernoulli_round


def test_ablation_rotation_prevents_overflow(benchmark, emit, bench_rng):
    """Overflow rate of a spiky aggregate with and without rotation."""
    dimension, modulus, gamma = 1024, 2**10, 64.0
    participants = 30
    spike = np.zeros((participants, dimension))
    spike[:, 7] = 1.0  # every participant's mass on one coordinate

    def overflow_rates():
        rotation = RandomRotation.create(dimension, bench_rng)
        with_rotation = 0
        without_rotation = 0
        trials = 50
        for _ in range(trials):
            scaled_plain = gamma * spike
            noisy_plain = smm_perturb(scaled_plain, 1.0, bench_rng).sum(axis=0)
            without_rotation += wraps_around(noisy_plain, modulus)
            scaled_rotated = gamma * rotation.forward(spike)
            noisy_rotated = smm_perturb(scaled_rotated, 1.0, bench_rng).sum(
                axis=0
            )
            with_rotation += wraps_around(noisy_rotated, modulus)
        return with_rotation / trials, without_rotation / trials

    rotated_rate, plain_rate = benchmark.pedantic(
        overflow_rates, rounds=1, iterations=1
    )
    emit(
        f"[ablation rotation] overflow rate: without={plain_rate:.0%} "
        f"with={rotated_rate:.0%}",
        filename="ablations.txt",
    )
    assert plain_rate == 1.0  # 30 * 64 = 1920 > 512 always wraps
    assert rotated_rate == 0.0


def test_ablation_conversion_lemma3_vs_classic(benchmark, emit):
    """The CKS conversion's epsilon saving over the classic bound."""

    def compare():
        rows = []
        for sigma in [2.0, 4.0, 8.0]:
            pairs = [
                (
                    rdp_to_dp(alpha, gaussian_rdp(alpha, 1.0, sigma), 1e-5),
                    gaussian_rdp(alpha, 1.0, sigma)
                    + math.log(1e5) / (alpha - 1),
                )
                for alpha in range(2, 101)
            ]
            best_cks = min(pair[0] for pair in pairs)
            best_classic = min(pair[1] for pair in pairs)
            rows.append((sigma, best_cks, best_classic))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    for sigma, cks, classic in rows:
        emit(
            f"[ablation conversion] sigma={sigma:g}: "
            f"eps_cks={cks:.4f} eps_classic={classic:.4f} "
            f"saving={100 * (1 - cks / classic):.1f}%",
            filename="ablations.txt",
        )
        assert cks < classic


def test_ablation_subsampling_amplification(benchmark, emit):
    """Noise saved by Poisson amplification at the FL operating point."""

    def factory(sigma):
        return lambda alpha: gaussian_rdp(alpha, 1.0, sigma)

    def calibrate_both():
        budget = PrivacyBudget(epsilon=3.0)
        amplified = calibrate_noise(
            factory,
            AccountingSpec(budget=budget, rounds=100, sampling_rate=0.01),
        )
        plain = calibrate_noise(
            factory, AccountingSpec(budget=budget, rounds=100)
        )
        return amplified.noise_parameter, plain.noise_parameter

    amplified_sigma, plain_sigma = benchmark.pedantic(
        calibrate_both, rounds=1, iterations=1
    )
    emit(
        f"[ablation subsampling] sigma with q=0.01: {amplified_sigma:.2f}, "
        f"without: {plain_sigma:.2f} "
        f"({plain_sigma / amplified_sigma:.1f}x more noise)",
        filename="ablations.txt",
    )
    assert plain_sigma > 3.0 * amplified_sigma


def test_ablation_integer_sigma_cost(benchmark, emit, bench_rng):
    """Extra mse DGM pays for rounding sigma up to an integer."""
    from repro.mechanisms import DiscreteGaussianMixtureMechanism

    def measure():
        compression = CompressionConfig(modulus=2**12, gamma=16.0)
        spec = InputSpec(num_participants=50, dimension=512)
        accounting = AccountingSpec(budget=PrivacyBudget(epsilon=2.0))
        sigmas = {}
        for integer_sigma in (True, False):
            mechanism = DiscreteGaussianMixtureMechanism(
                compression, integer_sigma=integer_sigma
            )
            mechanism.calibrate(spec, accounting)
            sigmas[integer_sigma] = mechanism.effective_sigma
        return sigmas

    sigmas = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        f"[ablation integer-sigma] calibrated={sigmas[False]:.3f} "
        f"rounded-up={sigmas[True]:.3f} "
        f"(variance overhead {100 * (sigmas[True]**2 / sigmas[False]**2 - 1):.0f}%)",
        filename="ablations.txt",
    )
    assert sigmas[True] >= sigmas[False]


def test_ablation_mixture_vs_stochastic_rounding_norm(
    benchmark, emit, bench_rng
):
    """Section 5's example: rounding inflates L2 norms, the mixture does
    not inflate the *sensitivity* (it folds quantisation into Eq. (4))."""
    dimension = 10_000

    def measure():
        values = np.full(dimension, 0.01)
        rounded = stochastic_round(values, bench_rng).astype(float)
        mixture = bernoulli_round(values, bench_rng).astype(float)
        return (
            float(np.linalg.norm(values)),
            float(np.linalg.norm(rounded)),
            float(np.linalg.norm(mixture)),
        )

    original, rounded, mixture = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    emit(
        f"[ablation rounding-inflation] |x|={original:.2f} "
        f"|stochastic_round(x)|={rounded:.2f} (the sqrt(d) blow-up; the "
        "mixture's Bernoulli step has the same realisation but its "
        "sensitivity bound Eq. (4) stays ~|x|^2 + L1)",
        filename="ablations.txt",
    )
    # The Section 5 example: norm 1 -> ~10 after rounding.
    assert rounded > 5 * original
