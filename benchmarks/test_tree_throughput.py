"""Aggregation-tree throughput: composer and topology cost.

The hierarchy makes a privacy/cost trade explicit: the clear composer
adds one modular addition per interior node (free), while the secagg
composer runs a real outer Bonawitz round per interior node — pairwise
masking, Shamir sharing and unmasking over ``k`` virtual clients whose
vectors are full model-length sums.  This benchmark measures that
premium for the three shapes the docs discuss:

* ``8 flat-clear``   — the legacy sharded round (baseline);
* ``8 secagg``       — one outer Bonawitz round over 8 shard sums;
* ``4x4 secagg``     — a 3-level tree, five composition rounds
                       (4 region nodes + 1 root).

Every measured round is verified bit-exact against the survivors'
direct modular sum, so the numbers never come from a broken round.
Results land in ``benchmarks/results/tree_throughput.txt``.  The
tier-1 smoke additionally bounds the secagg-compose premium so an
accidental quadratic blowup in the virtual-client layer fails fast.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.simulation import (
    BernoulliDropout,
    HierarchicalSecAggRound,
    Population,
    SimulatedClock,
)

DIMENSION = 64
MODULUS = 2**16
DROPOUT_RATE = 0.1
THRESHOLD_FRACTION = 0.6
RESULTS_FILE = "tree_throughput.txt"

#: (label, topology, composer) — the shapes compared throughout.
SHAPES = [
    ("8-flat-clear", "8", "clear"),
    ("8-secagg", "8", "secagg"),
    ("4x4-secagg", "4x4", "secagg"),
]


def _run_tree_rounds(
    population_size: int,
    cohort_cap: int,
    num_rounds: int,
    bench_rng: np.random.Generator,
    topology: str,
    composer: str,
    rebalance: bool = False,
) -> tuple[float, int]:
    """Run ``num_rounds`` tree rounds; return (rounds/sec, drops)."""
    population = Population(
        population_size,
        availability=BernoulliDropout(DROPOUT_RATE),
        seed=20220601,
    )
    clock = SimulatedClock()
    total_dropped = 0
    started = time.perf_counter()
    for round_index in range(num_rounds):
        cohort = population.sample_cohort(round_index, cohort_cap)
        if len(cohort) < 4:
            continue
        vectors = {
            u: bench_rng.integers(0, MODULUS, size=DIMENSION, dtype=np.int64)
            for u in cohort
        }
        tree_round = HierarchicalSecAggRound(
            vectors=vectors,
            modulus=MODULUS,
            clock=clock,
            rng=population.round_rng(round_index, purpose=2),
            topology=topology,
            threshold_fraction=THRESHOLD_FRACTION,
            composer=composer,
            plans=population.plans(round_index, cohort),
            phase_timeout=60.0,
            rebalance=rebalance,
        )
        outcome = tree_round.execute()
        expected = np.zeros(DIMENSION, dtype=np.int64)
        for u in outcome.included:
            expected = np.mod(expected + vectors[u], MODULUS)
        assert np.array_equal(outcome.modular_sum, expected)
        assert outcome.composer == composer
        total_dropped += len(outcome.dropped)
    elapsed = time.perf_counter() - started
    return num_rounds / elapsed, total_dropped


@pytest.mark.parametrize(
    "label, topology, composer",
    SHAPES,
    ids=[label for label, _, _ in SHAPES],
)
def test_tree_rounds_per_second(label, topology, composer, emit, bench_rng):
    """Bounded-cohort tree throughput across the three shapes."""
    population_size, cohort = 128, 48
    rounds_per_sec, dropped = _run_tree_rounds(
        population_size,
        cohort,
        num_rounds=2,
        bench_rng=bench_rng,
        topology=topology,
        composer=composer,
    )
    emit(
        f"tree_throughput population={population_size:4d} cohort<={cohort:3d} "
        f"dropout={DROPOUT_RATE} shape={label:>12s} "
        f"rounds_per_sec={rounds_per_sec:8.3f} dropped={dropped}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0


def test_secagg_compose_premium_bounded(emit, bench_rng):
    """Tier-1 smoke: the outer Bonawitz rounds must stay a bounded
    premium over the clear composition, not a blowup.

    The leaf sub-rounds dominate (cohort 48 across 8 shards), so the
    extra composition round should cost a modest fraction of a round.
    2x slack is generous against wall-clock noise while still catching
    anything catastrophically slower hiding in the virtual-client or
    composition-round hot path.
    """
    population_size, cohort = 128, 48
    clear_rps, _ = _run_tree_rounds(
        population_size, cohort, num_rounds=2, bench_rng=bench_rng,
        topology="8", composer="clear",
    )
    secagg_rps, _ = _run_tree_rounds(
        population_size, cohort, num_rounds=2, bench_rng=bench_rng,
        topology="8", composer="secagg",
    )
    emit(
        f"tree_compose_premium population={population_size:4d} "
        f"cohort<={cohort:3d} clear_rps={clear_rps:8.3f} "
        f"secagg_rps={secagg_rps:8.3f} "
        f"premium={100 * (clear_rps / secagg_rps - 1):+.1f}%",
        RESULTS_FILE,
    )
    assert secagg_rps * 2.0 >= clear_rps


def test_rebalance_overhead(emit, bench_rng):
    """Rebalancing is a no-op on healthy rounds; its overhead when
    armed (but never triggered) must vanish into noise."""
    population_size, cohort = 128, 48
    plain_rps, _ = _run_tree_rounds(
        population_size, cohort, num_rounds=2, bench_rng=bench_rng,
        topology="8", composer="clear",
    )
    armed_rps, _ = _run_tree_rounds(
        population_size, cohort, num_rounds=2, bench_rng=bench_rng,
        topology="8", composer="clear", rebalance=True,
    )
    emit(
        f"tree_rebalance_overhead population={population_size:4d} "
        f"cohort<={cohort:3d} plain_rps={plain_rps:8.3f} "
        f"armed_rps={armed_rps:8.3f} "
        f"overhead={100 * (plain_rps / armed_rps - 1):+.1f}%",
        RESULTS_FILE,
    )
    assert armed_rps * 1.5 >= plain_rps


@pytest.mark.slow
@pytest.mark.parametrize(
    "label, topology, composer",
    SHAPES,
    ids=[label for label, _, _ in SHAPES],
)
def test_tree_rounds_per_second_full_cohort(
    label, topology, composer, emit, bench_rng
):
    """Full-cohort pop-512 tree throughput: the quadratic regime where
    the 8-way (and 16-leaf) trees earn their keep."""
    population_size = 512
    rounds_per_sec, dropped = _run_tree_rounds(
        population_size,
        population_size,
        num_rounds=1,
        bench_rng=bench_rng,
        topology=topology,
        composer=composer,
    )
    emit(
        f"tree_throughput_full population={population_size:4d} "
        f"dropout={DROPOUT_RATE} shape={label:>12s} "
        f"rounds_per_sec={rounds_per_sec:8.3f} dropped={dropped}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0
