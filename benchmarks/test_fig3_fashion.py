"""Figure 3: federated learning on Fashion-MNIST (test accuracy).

Same grid as Figure 2 on the harder dataset (the paper's Fashion-MNIST;
here the higher-overlap surrogate).  The paper's conclusions are the
same as Figure 2's with uniformly lower absolute accuracy; this
benchmark regenerates the epsilon sweep at m = 2^8 plus the two extreme
bitwidths at epsilon = 3.

Expected shape (paper): identical mechanism ordering to Figure 2 at
lower accuracy; at epsilon = 3 / m = 2^8 SMM's gap over Skellam/DDG is
larger than on MNIST (~10%).
"""

import math

import pytest

pytestmark = pytest.mark.slow  # figure reproduction: minutes of wall time

from benchmarks import fl_common
from benchmarks.fl_common import train_point

EPSILONS = [1.0, 3.0, 5.0]


@pytest.mark.parametrize("mechanism", ["dpsgd", "smm", "skellam", "ddg"])
def test_fig3_epsilon_sweep(benchmark, emit, mechanism):
    """Accuracy vs epsilon at m = 2^8 on the Fashion surrogate."""
    fl_common.train_point.dataset = "fashion"

    def sweep():
        panel = None if mechanism == "dpsgd" else "2^8"
        return [train_point(mechanism, panel, eps) for eps in EPSILONS]

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cells = "  ".join(
        f"eps={eps:.0f}:{100 * acc:5.1f}%" for eps, acc in zip(EPSILONS, series)
    )
    emit(f"[fig3 m=2^8] {mechanism:8s} {cells}", filename="fig3.txt")
    assert all(not math.isnan(acc) for acc in series)


@pytest.mark.parametrize("mechanism", ["smm", "skellam", "ddg"])
@pytest.mark.parametrize("panel", ["2^6", "2^10"])
def test_fig3_bitwidth_panels(benchmark, emit, mechanism, panel):
    """The extreme bitwidths at epsilon = 3 on the Fashion surrogate."""
    fl_common.train_point.dataset = "fashion"
    accuracy = benchmark.pedantic(
        lambda: train_point(mechanism, panel, 3.0), rounds=1, iterations=1
    )
    emit(
        f"[fig3 panel m={panel} eps=3] {mechanism:8s} acc={100 * accuracy:5.1f}%",
        filename="fig3.txt",
    )
