"""Ablations for the accounting and protocol subsystems added on top of
the paper's pipeline.

* **RDP vs tight PLD** — how much epsilon the paper's Theorem 5 + Lemma
  2/3 pipeline leaves on the table versus the Koskela et al. [34] FFT
  accountant, single-shot and composed.
* **Bound tightness** — Theorem 5's closed form over the exact Rényi
  divergence (the slack the paper's future work proposes to reduce).
* **Communication cost** — bytes per client per round across the
  bitwidths of Figures 1-3, with and without Bonawitz protocol overhead.
* **Bonawitz protocol scaling** — wall-clock of the full four-round
  protocol as the cohort grows, dropouts included.
"""

import math

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # figure reproduction: minutes of wall time

from repro.accounting.divergences import smm_rdp
from repro.accounting.pld import smm_pair_pmfs, tight_epsilon
from repro.accounting.rdp import RdpAccountant, best_epsilon
from repro.analysis.numerical import bound_tightness
from repro.core.communication import (
    bonawitz_round_cost,
    client_upload_bytes,
    training_communication,
)
from repro.secagg import run_bonawitz
from repro.secagg.bonawitz import ROUND_MASKED_INPUT

VALUE = 1.5
DELTA = 1e-5
_C = VALUE**2 + 0.5 - 0.25
_DELTA_INF = 2


def test_ablation_rdp_vs_pld_single_shot(benchmark, emit):
    """Single-release epsilon: Theorem 5 pipeline vs tight PLD."""

    def sweep():
        rows = []
        for total_lambda in (100.0, 400.0, 1600.0):
            rdp_eps, _ = best_epsilon(
                range(2, 101),
                lambda a: smm_rdp(a, _C, total_lambda, _DELTA_INF),
                DELTA,
            )
            p, q = smm_pair_pmfs(VALUE, total_lambda)
            pld_eps = tight_epsilon(p, q, DELTA)
            rows.append((total_lambda, rdp_eps, pld_eps))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for total_lambda, rdp_eps, pld_eps in rows:
        emit(
            f"[ablation rdp-vs-pld single] n*lam={total_lambda:6.0f} "
            f"rdp={rdp_eps:7.3f} pld={pld_eps:7.3f} "
            f"ratio={rdp_eps / pld_eps:5.2f}",
            filename="ablations.txt",
        )
        assert pld_eps < rdp_eps  # PLD is tight; RDP must dominate it


def test_ablation_rdp_vs_pld_composed(benchmark, emit):
    """Composed subsampled run (T=100, q=0.05): both accountants."""
    rounds, rate, total_lambda = 100, 0.05, 400.0

    def run():
        accountant = RdpAccountant()
        accountant.step_subsampled(
            lambda a: smm_rdp(a, _C, total_lambda, _DELTA_INF),
            rate,
            count=rounds,
        )
        p, q = smm_pair_pmfs(VALUE, total_lambda)
        pld_eps = tight_epsilon(
            p, q, DELTA, compositions=rounds, sampling_rate=rate
        )
        return accountant.epsilon(DELTA), pld_eps

    rdp_eps, pld_eps = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"[ablation rdp-vs-pld composed T=100 q=0.05] "
        f"rdp={rdp_eps:7.3f} pld={pld_eps:7.3f} "
        f"ratio={rdp_eps / pld_eps:5.2f}",
        filename="ablations.txt",
    )
    assert pld_eps < rdp_eps


def test_ablation_theorem5_slack(benchmark, emit):
    """Theorem 5 closed form over the exact Rényi divergence."""

    def sweep():
        return [
            (total_lambda, alpha, bound_tightness(VALUE, total_lambda, alpha))
            for total_lambda in (100.0, 400.0)
            for alpha in (2.0, 3.0)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for total_lambda, alpha, ratio in rows:
        emit(
            f"[ablation thm5-slack] n*lam={total_lambda:6.0f} "
            f"alpha={alpha:.0f} bound/exact={ratio:5.2f}",
            filename="ablations.txt",
        )
        assert ratio >= 1.0  # the theorem holds ...
        assert ratio < 5.0  # ... and its slack is a small constant


def test_ablation_communication_cost(benchmark, emit):
    """Bytes per client per round across the figures' bitwidths."""
    dimension = 16_384

    def sweep():
        rows = []
        for bits in (6, 8, 10, 14, 18):
            payload = client_upload_bytes(dimension, 2**bits)
            with_protocol = bonawitz_round_cost(
                240, dimension, 2**bits
            ).total
            rows.append((bits, payload, with_protocol))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    float_bytes = 4 * dimension
    for bits, payload, with_protocol in rows:
        emit(
            f"[ablation comm-cost d=16384] m=2^{bits:<2d} "
            f"payload={payload / 1024:7.1f}KiB "
            f"+protocol={with_protocol / 1024:7.1f}KiB "
            f"vs float32={float_bytes / 1024:7.1f}KiB",
            filename="ablations.txt",
        )
    # The m = 2^8 operating point is the paper's 4x compression claim.
    assert rows[1][1] == dimension


def test_ablation_training_run_totals(benchmark, emit):
    """Whole-run upload volume at the paper's full-scale geometry."""

    def compute():
        private = training_communication(65_536, 2**8, 1000, 240)
        central = training_communication(65_536, None, 1000, 240)
        return private, central

    private, central = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        f"[ablation run-volume T=1000 B=240 d=65536] "
        f"m=2^8: {private.total_megabytes:9.0f}MiB  "
        f"float32: {central.total_megabytes:9.0f}MiB  "
        f"saving={central.total_bytes / private.total_bytes:.1f}x",
        filename="ablations.txt",
    )
    assert central.total_bytes == 4 * private.total_bytes


@pytest.mark.parametrize("num_clients", [8, 16, 32])
def test_ablation_bonawitz_scaling(benchmark, emit, num_clients):
    """Wall-clock of the full protocol (with one dropout) vs cohort size."""
    rng = np.random.default_rng(13)
    dimension, modulus = 256, 2**10
    inputs = rng.integers(
        0, modulus, size=(num_clients, dimension), dtype=np.int64
    )
    threshold = max(2, num_clients // 2)
    dropouts = {num_clients: ROUND_MASKED_INPUT}

    def run():
        return run_bonawitz(
            inputs,
            modulus,
            threshold,
            np.random.default_rng(7),
            dropouts=dropouts,
        )

    outcome = benchmark(run)
    expected = np.mod(inputs[:-1].sum(axis=0), modulus)
    np.testing.assert_array_equal(outcome.modular_sum, expected)
    emit(
        f"[ablation bonawitz-scaling] n={num_clients:3d} t={threshold:3d} "
        f"d={dimension} ok (timing in benchmark table)",
        filename="ablations.txt",
    )
