"""Simulation-engine throughput: rounds/sec vs population size.

Production federated systems sample a bounded cohort per round from an
arbitrarily large registered population (Bonawitz et al. run cohorts of
hundreds over fleets of millions), so the default benchmark holds the
cohort at ``min(population, 48)`` and scales the *population* through
{32, 128, 512} — measuring registry, sampling and orchestration
overhead at fixed protocol cost.  The slow tier additionally runs
full-cohort rounds (cohort == population), where the Bonawitz
protocol's quadratic pairwise-mask and Shamir-sharing work dominates.

The ``--shards`` axis records sharded vs flat throughput: a sharded
round runs ``k`` hierarchical Bonawitz sub-rounds (``O(n^2/k)`` total
work) on the ``inline`` or ``process`` execution backend, and its
composed sum is verified exact against the survivors' direct modular
sum, same as the flat rounds.

Each measured round is a complete dropout-tolerant async protocol
execution on the simulated clock, verified exact against the surviving
cohort's direct modular sum.  Results land in
``benchmarks/results/sim_throughput.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.simulation import (
    AsyncSecAggRound,
    BernoulliDropout,
    Population,
    ShardedSecAggRound,
    SimulatedClock,
    get_execution_backend,
    shamir_threshold,
)
from repro.telemetry import MetricsRegistry, MetricsReport

POPULATIONS = [32, 128, 512]
DIMENSION = 64
MODULUS = 2**16
DROPOUT_RATE = 0.1
THRESHOLD_FRACTION = 0.6
RESULTS_FILE = "sim_throughput.txt"


def _run_rounds(
    population_size: int,
    cohort_cap: int,
    num_rounds: int,
    bench_rng: np.random.Generator,
    shards: int = 1,
    backend: str = "inline",
    telemetry: bool = False,
) -> tuple[float, int, dict, MetricsReport | None]:
    """Run ``num_rounds`` aggregation rounds.

    Returns:
        ``(rounds/sec, total drops, wire, report)`` where ``wire``
        aggregates the rounds' :class:`~repro.secagg.wire.WireStats` —
        total messages/bytes plus a per-phase byte breakdown — and
        ``report`` carries the metrics registry snapshot when
        ``telemetry`` was on (``None`` otherwise).
    """
    population = Population(
        population_size,
        availability=BernoulliDropout(DROPOUT_RATE),
        seed=20220601,
    )
    clock = SimulatedClock()
    registry = MetricsRegistry() if telemetry else None
    executor = get_execution_backend(backend)
    # Pool start-up is lazy; pull it out of the timed window so the
    # recorded rounds/sec measures protocol cost, not worker spawn.
    executor.warm()
    total_dropped = 0
    wire = {"messages": 0, "bytes": 0, "phase_bytes": {}, "rounds": 0}
    started = time.perf_counter()
    try:
        for round_index in range(num_rounds):
            cohort = population.sample_cohort(round_index, cohort_cap)
            if len(cohort) < 4:
                continue
            vectors = {
                u: bench_rng.integers(
                    0, MODULUS, size=DIMENSION, dtype=np.int64
                )
                for u in cohort
            }
            rng = population.round_rng(round_index, purpose=2)
            plans = population.plans(round_index, cohort)
            if shards > 1:
                sharded_round = ShardedSecAggRound(
                    vectors=vectors,
                    modulus=MODULUS,
                    clock=clock,
                    rng=rng,
                    shards=shards,
                    threshold_fraction=THRESHOLD_FRACTION,
                    plans=plans,
                    phase_timeout=60.0,
                    backend=executor,
                    metrics=registry,
                )
                outcome = sharded_round.execute()
            else:
                secagg_round = AsyncSecAggRound(
                    vectors=vectors,
                    modulus=MODULUS,
                    threshold=shamir_threshold(
                        THRESHOLD_FRACTION, len(cohort)
                    ),
                    clock=clock,
                    rng=rng,
                    plans=plans,
                    phase_timeout=60.0,
                    metrics=registry,
                )
                outcome = clock.run(secagg_round.run())
            expected = np.zeros(DIMENSION, dtype=np.int64)
            for u in outcome.included:
                expected = np.mod(expected + vectors[u], MODULUS)
            assert np.array_equal(outcome.modular_sum, expected)
            total_dropped += len(outcome.dropped)
            if outcome.wire is not None:
                wire["messages"] += outcome.wire.total_messages
                wire["bytes"] += outcome.wire.total_bytes
                wire["rounds"] += 1
                for phase, totals in outcome.wire.phase_totals().items():
                    wire["phase_bytes"][phase] = (
                        wire["phase_bytes"].get(phase, 0)
                        + totals["up_bytes"]
                        + totals["down_bytes"]
                    )
        elapsed = time.perf_counter() - started
    finally:
        executor.close()
    report = (
        MetricsReport(snapshot=registry.snapshot())
        if registry is not None
        else None
    )
    return num_rounds / elapsed, total_dropped, wire, report


def _wire_suffix(wire: dict) -> str:
    """Per-round wire accounting fields for a results line."""
    rounds = max(1, wire["rounds"])
    return (
        f"wire_msgs_per_round={wire['messages'] // rounds} "
        f"wire_kib_per_round={wire['bytes'] / rounds / 1024:.1f}"
    )


@pytest.mark.parametrize("population_size", POPULATIONS)
def test_rounds_per_second(population_size, emit, bench_rng):
    """Bounded-cohort throughput across the population sweep."""
    cohort = min(population_size, 48)
    rounds_per_sec, dropped, wire, _ = _run_rounds(
        population_size, cohort, num_rounds=2, bench_rng=bench_rng
    )
    emit(
        f"sim_throughput population={population_size:4d} cohort<={cohort:3d} "
        f"dropout={DROPOUT_RATE} rounds_per_sec={rounds_per_sec:8.3f} "
        f"dropped={dropped} {_wire_suffix(wire)}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0


def test_wire_accounting_per_phase(emit, bench_rng):
    """Per-phase wire breakdown of the bounded-cohort configuration."""
    rounds_per_sec, _, wire, _ = _run_rounds(
        128, 48, num_rounds=2, bench_rng=bench_rng
    )
    breakdown = " ".join(
        f"{phase}={wire['phase_bytes'][phase]}B"
        for phase in sorted(wire["phase_bytes"])
    )
    emit(
        f"sim_wire population= 128 cohort<= 48 rounds={wire['rounds']} "
        f"total_msgs={wire['messages']} {breakdown}",
        RESULTS_FILE,
    )
    assert wire["messages"] > 0
    # Share routing is the protocol's quadratic phase; it must dominate
    # the advertise handshake at this cohort size (measured ~2.5x).
    assert wire["phase_bytes"]["share-keys"] > wire["phase_bytes"]["advertise"]


@pytest.mark.parametrize("shards", [4])
def test_rounds_per_second_sharded(shards, emit, bench_rng):
    """Sharded bounded-cohort throughput (inline backend, tier-1)."""
    population_size, cohort = 128, 48
    rounds_per_sec, dropped, wire, _ = _run_rounds(
        population_size,
        cohort,
        num_rounds=2,
        bench_rng=bench_rng,
        shards=shards,
    )
    emit(
        f"sim_throughput population={population_size:4d} cohort<={cohort:3d} "
        f"dropout={DROPOUT_RATE} shards={shards} backend=inline "
        f"rounds_per_sec={rounds_per_sec:8.3f} dropped={dropped} "
        f"{_wire_suffix(wire)}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0


@pytest.mark.slow
@pytest.mark.parametrize("population_size", [128, 512])
def test_rounds_per_second_full_cohort(population_size, emit, bench_rng):
    """Full-cohort throughput: the protocol's quadratic regime."""
    rounds_per_sec, dropped, wire, _ = _run_rounds(
        population_size, population_size, num_rounds=1, bench_rng=bench_rng
    )
    emit(
        f"sim_throughput_full population={population_size:4d} "
        f"dropout={DROPOUT_RATE} rounds_per_sec={rounds_per_sec:8.3f} "
        f"dropped={dropped} {_wire_suffix(wire)}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["inline", "process", "process-pickle"])
def test_rounds_per_second_full_cohort_sharded(backend, emit, bench_rng):
    """Full-cohort sharded throughput at population 512.

    The hierarchical regime the sharding layer exists for: 8 shards cut
    the quadratic protocol work by ~8x, and the process backends overlap
    the shard sub-rounds across cores on top of that.  ``process`` moves
    shard vectors over the shared-memory transport; ``process-pickle``
    ships them inside the task pickle — the before/after pair for the
    vector-transport comparison.
    """
    population_size, shards = 512, 8
    # Three rounds: a single ~1.3s round is too noisy to compare the
    # vector transports, and the reused shared-memory block only shows
    # its amortised cost from the second round on.
    rounds_per_sec, dropped, wire, _ = _run_rounds(
        population_size,
        population_size,
        num_rounds=3,
        bench_rng=bench_rng,
        shards=shards,
        backend=backend,
    )
    emit(
        f"sim_throughput_full population={population_size:4d} "
        f"dropout={DROPOUT_RATE} shards={shards} backend={backend} "
        f"rounds_per_sec={rounds_per_sec:8.3f} dropped={dropped} "
        f"{_wire_suffix(wire)}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0


def test_phase_latency_quantiles(emit, bench_rng):
    """p50/p99 per-phase latencies on both clocks, from the registry."""
    _, _, _, report = _run_rounds(
        128, 48, num_rounds=2, bench_rng=bench_rng, telemetry=True
    )
    assert report is not None
    rows = report.phase_latency_rows()
    assert [row["phase"] for row in rows] == [
        "advertise", "share-keys", "masked-input", "unmask"
    ]
    for row in rows:
        emit(
            f"sim_phase_latency phase={row['phase']:>12s} "
            f"sim_p50={row['sim_p50']:.4f} sim_p99={row['sim_p99']:.4f} "
            f"wall_p50={row['wall_p50']:.4f} wall_p99={row['wall_p99']:.4f}",
            RESULTS_FILE,
        )


def test_telemetry_not_slower(emit, bench_rng, best_of):
    """Metering overhead must stay under a hard 10% bound (tier-1).

    Best-of-3 on each side squeezes scheduler noise out of the
    comparison, so the bound is tight enough to actually fail when the
    instrumentation hot path regresses (the 1.5x-slack ancestor of this
    guard waved through a measured +46% overhead).
    """
    plain = best_of(
        3,
        lambda: _run_rounds(128, 48, num_rounds=2, bench_rng=bench_rng)[0],
    )
    report_box = []

    def metered_run():
        rps, _, _, report = _run_rounds(
            128, 48, num_rounds=2, bench_rng=bench_rng, telemetry=True
        )
        report_box.append(report)
        return rps

    metered = best_of(3, metered_run)
    emit(
        f"sim_telemetry_overhead population= 128 cohort<= 48 "
        f"plain_rps={plain:8.3f} metered_rps={metered:8.3f} "
        f"overhead={100 * (plain / metered - 1):+.1f}%",
        RESULTS_FILE,
    )
    assert report_box[-1] is not None
    assert report_box[-1].counter_sum("secagg_rounds_total") > 0
    assert metered * 1.10 >= plain


@pytest.mark.slow
def test_telemetry_overhead_full_cohort_sharded(emit, bench_rng, best_of):
    """Metering overhead in the pop-512 sharded regime (hard <= 10%).

    The heaviest configuration is where per-phase spans, wire counters
    and shard-snapshot absorption would show up if they cost anything;
    best-of-2 per side keeps the comparison honest at ~1.3s/round.
    """
    population_size, shards = 512, 8
    plain = best_of(
        2,
        lambda: _run_rounds(
            population_size,
            population_size,
            num_rounds=3,
            bench_rng=bench_rng,
            shards=shards,
        )[0],
    )
    report_box = []

    def metered_run():
        rps, _, _, report = _run_rounds(
            population_size,
            population_size,
            num_rounds=3,
            bench_rng=bench_rng,
            shards=shards,
            telemetry=True,
        )
        report_box.append(report)
        return rps

    metered = best_of(2, metered_run)
    emit(
        f"sim_telemetry_overhead population={population_size:4d} "
        f"full-cohort shards={shards} plain_rps={plain:8.3f} "
        f"metered_rps={metered:8.3f} "
        f"overhead={100 * (plain / metered - 1):+.1f}%",
        RESULTS_FILE,
    )
    assert report_box[-1] is not None
    # Every shard's sub-round reported in, relabeled per shard.
    assert report_box[-1].counter_sum("secagg_rounds_total") >= 3 * shards - 3
    assert metered * 1.10 >= plain
