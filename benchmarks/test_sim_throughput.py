"""Simulation-engine throughput: rounds/sec vs population size.

Production federated systems sample a bounded cohort per round from an
arbitrarily large registered population (Bonawitz et al. run cohorts of
hundreds over fleets of millions), so the default benchmark holds the
cohort at ``min(population, 48)`` and scales the *population* through
{32, 128, 512} — measuring registry, sampling and orchestration
overhead at fixed protocol cost.  The slow tier additionally runs
full-cohort rounds (cohort == population), where the Bonawitz
protocol's quadratic pairwise-mask and Shamir-sharing work dominates.

The ``--shards`` axis records sharded vs flat throughput: a sharded
round runs ``k`` hierarchical Bonawitz sub-rounds (``O(n^2/k)`` total
work) on the ``inline`` or ``process`` execution backend, and its
composed sum is verified exact against the survivors' direct modular
sum, same as the flat rounds.

Each measured round is a complete dropout-tolerant async protocol
execution on the simulated clock, verified exact against the surviving
cohort's direct modular sum.  Results land in
``benchmarks/results/sim_throughput.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.simulation import (
    AsyncSecAggRound,
    BernoulliDropout,
    Population,
    ShardedSecAggRound,
    SimulatedClock,
    get_execution_backend,
    shamir_threshold,
)

POPULATIONS = [32, 128, 512]
DIMENSION = 64
MODULUS = 2**16
DROPOUT_RATE = 0.1
THRESHOLD_FRACTION = 0.6
RESULTS_FILE = "sim_throughput.txt"


def _run_rounds(
    population_size: int,
    cohort_cap: int,
    num_rounds: int,
    bench_rng: np.random.Generator,
    shards: int = 1,
    backend: str = "inline",
) -> tuple[float, int]:
    """Run ``num_rounds`` aggregation rounds; returns (rounds/sec, drops)."""
    population = Population(
        population_size,
        availability=BernoulliDropout(DROPOUT_RATE),
        seed=20220601,
    )
    clock = SimulatedClock()
    executor = get_execution_backend(backend)
    # Pool start-up is lazy; pull it out of the timed window so the
    # recorded rounds/sec measures protocol cost, not worker spawn.
    executor.warm()
    total_dropped = 0
    started = time.perf_counter()
    try:
        for round_index in range(num_rounds):
            cohort = population.sample_cohort(round_index, cohort_cap)
            if len(cohort) < 4:
                continue
            vectors = {
                u: bench_rng.integers(
                    0, MODULUS, size=DIMENSION, dtype=np.int64
                )
                for u in cohort
            }
            rng = population.round_rng(round_index, purpose=2)
            plans = population.plans(round_index, cohort)
            if shards > 1:
                sharded_round = ShardedSecAggRound(
                    vectors=vectors,
                    modulus=MODULUS,
                    clock=clock,
                    rng=rng,
                    shards=shards,
                    threshold_fraction=THRESHOLD_FRACTION,
                    plans=plans,
                    phase_timeout=60.0,
                    backend=executor,
                )
                outcome = sharded_round.execute()
            else:
                secagg_round = AsyncSecAggRound(
                    vectors=vectors,
                    modulus=MODULUS,
                    threshold=shamir_threshold(
                        THRESHOLD_FRACTION, len(cohort)
                    ),
                    clock=clock,
                    rng=rng,
                    plans=plans,
                    phase_timeout=60.0,
                )
                outcome = clock.run(secagg_round.run())
            expected = np.zeros(DIMENSION, dtype=np.int64)
            for u in outcome.included:
                expected = np.mod(expected + vectors[u], MODULUS)
            assert np.array_equal(outcome.modular_sum, expected)
            total_dropped += len(outcome.dropped)
        elapsed = time.perf_counter() - started
    finally:
        executor.close()
    return num_rounds / elapsed, total_dropped


@pytest.mark.parametrize("population_size", POPULATIONS)
def test_rounds_per_second(population_size, emit, bench_rng):
    """Bounded-cohort throughput across the population sweep."""
    cohort = min(population_size, 48)
    rounds_per_sec, dropped = _run_rounds(
        population_size, cohort, num_rounds=2, bench_rng=bench_rng
    )
    emit(
        f"sim_throughput population={population_size:4d} cohort<={cohort:3d} "
        f"dropout={DROPOUT_RATE} rounds_per_sec={rounds_per_sec:8.3f} "
        f"dropped={dropped}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0


@pytest.mark.parametrize("shards", [4])
def test_rounds_per_second_sharded(shards, emit, bench_rng):
    """Sharded bounded-cohort throughput (inline backend, tier-1)."""
    population_size, cohort = 128, 48
    rounds_per_sec, dropped = _run_rounds(
        population_size,
        cohort,
        num_rounds=2,
        bench_rng=bench_rng,
        shards=shards,
    )
    emit(
        f"sim_throughput population={population_size:4d} cohort<={cohort:3d} "
        f"dropout={DROPOUT_RATE} shards={shards} backend=inline "
        f"rounds_per_sec={rounds_per_sec:8.3f} dropped={dropped}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0


@pytest.mark.slow
@pytest.mark.parametrize("population_size", [128, 512])
def test_rounds_per_second_full_cohort(population_size, emit, bench_rng):
    """Full-cohort throughput: the protocol's quadratic regime."""
    rounds_per_sec, dropped = _run_rounds(
        population_size, population_size, num_rounds=1, bench_rng=bench_rng
    )
    emit(
        f"sim_throughput_full population={population_size:4d} "
        f"dropout={DROPOUT_RATE} rounds_per_sec={rounds_per_sec:8.3f} "
        f"dropped={dropped}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["inline", "process"])
def test_rounds_per_second_full_cohort_sharded(backend, emit, bench_rng):
    """Full-cohort sharded throughput at population 512.

    The hierarchical regime the sharding layer exists for: 8 shards cut
    the quadratic protocol work by ~8x, and the process backend overlaps
    the shard sub-rounds across cores on top of that.
    """
    population_size, shards = 512, 8
    rounds_per_sec, dropped = _run_rounds(
        population_size,
        population_size,
        num_rounds=1,
        bench_rng=bench_rng,
        shards=shards,
        backend=backend,
    )
    emit(
        f"sim_throughput_full population={population_size:4d} "
        f"dropout={DROPOUT_RATE} shards={shards} backend={backend} "
        f"rounds_per_sec={rounds_per_sec:8.3f} dropped={dropped}",
        RESULTS_FILE,
    )
    assert rounds_per_sec > 0
