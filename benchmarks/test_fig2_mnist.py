"""Figure 2: federated learning on MNIST (test accuracy).

Paper workload: the Section 6.2 MLP (d = 63,610) on MNIST, one record per
participant, 4 epochs of Poisson-sampled rounds, Adam lr 0.005;
panels sweep epsilon in {1..5}, |B| in {120..960} and gamma at each
bitwidth m in {2^6, 2^8, 2^10}.

This benchmark regenerates the figure's load-bearing series at the
DESIGN.md §4 bench scale (MNIST surrogate, hidden=16, |B|=100, T=80,
gamma = m/8 to preserve the paper's d/(4 gamma^2) regime per panel):

* epsilon sweep at m=2^8 for DPSGD, SMM, Skellam, DDG (panel d),
* the m=2^6 panel where only SMM retains signal (panel a),
* the m=2^10 panel where Skellam/DDG catch DPSGD (panel g),
* a batch-size point (panel e) and a gamma point (panel f),
* one cpSGD point (unusable everywhere, as in the paper).

Expected shape (paper): at 2^6 only SMM trains; at 2^8 SMM leads and the
gap narrows as epsilon grows; at 2^10 Skellam/DDG reach DPSGD with SMM
just behind; large |B| hurts the conditional-rounding baselines more;
cpSGD stays near chance.
"""

import math

import pytest

pytestmark = pytest.mark.slow  # figure reproduction: minutes of wall time

from benchmarks import fl_common
from benchmarks.fl_common import PANELS, train_point

fl_common.train_point.dataset = "mnist"

EPSILONS = [1.0, 3.0, 5.0]


@pytest.mark.parametrize("mechanism", ["dpsgd", "smm", "skellam", "ddg"])
def test_fig2_panel_d_epsilon_sweep(benchmark, emit, mechanism):
    """Panel (d): accuracy vs epsilon at m = 2^8."""
    fl_common.train_point.dataset = "mnist"

    def sweep():
        panel = None if mechanism == "dpsgd" else "2^8"
        return [train_point(mechanism, panel, eps) for eps in EPSILONS]

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cells = "  ".join(
        f"eps={eps:.0f}:{100 * acc:5.1f}%" for eps, acc in zip(EPSILONS, series)
    )
    emit(f"[fig2 panel-d m=2^8] {mechanism:8s} {cells}", filename="fig2.txt")
    assert all(not math.isnan(acc) for acc in series)


@pytest.mark.parametrize("mechanism", ["smm", "skellam", "ddg"])
@pytest.mark.parametrize("panel", ["2^6", "2^10"])
def test_fig2_bitwidth_panels(benchmark, emit, mechanism, panel):
    """Panels (a) and (g): the extreme bitwidths at epsilon = 3."""
    fl_common.train_point.dataset = "mnist"
    accuracy = benchmark.pedantic(
        lambda: train_point(mechanism, panel, 3.0), rounds=1, iterations=1
    )
    emit(
        f"[fig2 panel m={panel} eps=3] {mechanism:8s} acc={100 * accuracy:5.1f}%",
        filename="fig2.txt",
    )


@pytest.mark.parametrize("mechanism", ["smm", "ddg"])
def test_fig2_panel_e_large_batch(benchmark, emit, mechanism):
    """Panel (e): doubling |B| (the paper's |B| sweep, rightmost point)."""
    fl_common.train_point.dataset = "mnist"
    accuracy = benchmark.pedantic(
        lambda: train_point(
            mechanism, "2^8", 3.0, batch=2 * fl_common.SCALE.batch
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"[fig2 panel-e m=2^8 eps=3 2x-batch] {mechanism:8s} "
        f"acc={100 * accuracy:5.1f}%",
        filename="fig2.txt",
    )


@pytest.mark.parametrize("gamma_factor", [0.5, 2.0])
def test_fig2_panel_f_gamma_sweep(benchmark, emit, gamma_factor):
    """Panel (f): SMM accuracy vs gamma at m = 2^8 (peak in the middle)."""
    fl_common.train_point.dataset = "mnist"
    gamma = PANELS["2^8"][1] * gamma_factor
    accuracy = benchmark.pedantic(
        lambda: train_point("smm", "2^8", 3.0, gamma=gamma),
        rounds=1,
        iterations=1,
    )
    emit(
        f"[fig2 panel-f m=2^8 eps=3 gamma={gamma:g}] smm "
        f"acc={100 * accuracy:5.1f}%",
        filename="fig2.txt",
    )


def test_fig2_cpsgd_point(benchmark, emit):
    """cpSGD at its best panel — still near chance (paper: < 20%)."""
    fl_common.train_point.dataset = "mnist"
    accuracy = benchmark.pedantic(
        lambda: train_point("cpsgd", "2^8", 3.0), rounds=1, iterations=1
    )
    emit(
        f"[fig2 m=2^8 eps=3] cpsgd    acc={100 * accuracy:5.1f}%",
        filename="fig2.txt",
    )
