"""Figure 5: DGM vs SMM on the FL tasks (Appendix B.3).

Paper workload: MNIST and Fashion-MNIST at bitwidths {6, 8, 10} with
gamma in {16, 64, 256}, |B| = 240, 1000 rounds, epsilon in {1..5}.

This benchmark regenerates the epsilon = 3 slice at all three bitwidths
on the MNIST surrogate plus an m = 2^8 point on the Fashion surrogate.

Expected shape (paper): DGM is comparable to SMM except at small
bitwidths, where the integer-sigma rounding and the discrete Gaussian
non-closure gap (tau_n) degrade DGM — down to overflow at 6 bits under
strong privacy.
"""

import pytest

pytestmark = pytest.mark.slow  # figure reproduction: minutes of wall time

from benchmarks import fl_common
from benchmarks.fl_common import train_point


@pytest.mark.parametrize("mixture", ["smm", "dgm"])
@pytest.mark.parametrize("panel", ["2^6", "2^8", "2^10"])
def test_fig5_mnist(benchmark, emit, mixture, panel):
    """DGM vs SMM across bitwidths on the MNIST surrogate (eps = 3)."""
    fl_common.train_point.dataset = "mnist"
    accuracy = benchmark.pedantic(
        lambda: train_point(mixture, panel, 3.0), rounds=1, iterations=1
    )
    emit(
        f"[fig5 mnist m={panel} eps=3] {mixture:4s} acc={100 * accuracy:5.1f}%",
        filename="fig5.txt",
    )


@pytest.mark.parametrize("mixture", ["smm", "dgm"])
def test_fig5_fashion(benchmark, emit, mixture):
    """DGM vs SMM at m = 2^8 on the Fashion surrogate (eps = 3)."""
    fl_common.train_point.dataset = "fashion"
    accuracy = benchmark.pedantic(
        lambda: train_point(mixture, "2^8", 3.0), rounds=1, iterations=1
    )
    emit(
        f"[fig5 fashion m=2^8 eps=3] {mixture:4s} acc={100 * accuracy:5.1f}%",
        filename="fig5.txt",
    )
